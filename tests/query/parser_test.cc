#include "query/parser.h"

#include <gtest/gtest.h>

namespace wireframe {
namespace {

Database MakeDb() {
  DatabaseBuilder b;
  b.Add("n1", "actedIn", "n2");
  b.Add("n1", "<http://yago/created>", "n2");
  b.Add("n1", ":owns", "n2");
  return std::move(b).Build();
}

TEST(ParserTest, ParsesBasicQuery) {
  auto r = SparqlParser::Parse(
      "select ?x ?y where { ?x actedIn ?y . }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->projection, (std::vector<std::string>{"x", "y"}));
  EXPECT_FALSE(r->distinct);
  ASSERT_EQ(r->patterns.size(), 1u);
  EXPECT_EQ(r->patterns[0].subject_var, "x");
  EXPECT_EQ(r->patterns[0].predicate, "actedIn");
  EXPECT_EQ(r->patterns[0].object_var, "y");
}

TEST(ParserTest, ParsesDistinctAndStar) {
  auto r = SparqlParser::Parse("SELECT DISTINCT * WHERE { ?a p ?b }");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->distinct);
  EXPECT_TRUE(r->projection.empty());
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  auto r = SparqlParser::Parse("SeLeCt ?x WhErE { ?x p ?y . }");
  ASSERT_TRUE(r.ok());
}

TEST(ParserTest, ParsesAngleBracketIris) {
  auto r = SparqlParser::Parse(
      "select * where { ?x <http://yago/created> ?y . }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->patterns[0].predicate, "<http://yago/created>");
}

TEST(ParserTest, ParsesMultiplePatterns) {
  auto r = SparqlParser::Parse(
      "select * where { ?x a ?y . ?y b ?z . ?z c ?x . }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->patterns.size(), 3u);
}

TEST(ParserTest, TrailingDotOptional) {
  auto r = SparqlParser::Parse("select * where { ?x p ?y }");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->patterns.size(), 1u);
}

TEST(ParserTest, RejectsMissingSelect) {
  EXPECT_FALSE(SparqlParser::Parse("where { ?x p ?y }").ok());
}

TEST(ParserTest, RejectsEmptyWhere) {
  EXPECT_FALSE(SparqlParser::Parse("select * where { }").ok());
}

TEST(ParserTest, RejectsMissingBrace) {
  EXPECT_FALSE(SparqlParser::Parse("select * where ?x p ?y").ok());
}

TEST(ParserTest, RejectsUnterminatedWhere) {
  EXPECT_FALSE(SparqlParser::Parse("select * where { ?x p ?y . ").ok());
}

TEST(ParserTest, RejectsConstantSubject) {
  EXPECT_FALSE(SparqlParser::Parse("select * where { n1 p ?y }").ok());
}

TEST(ParserTest, ErrorsCarryOffsets) {
  auto r = SparqlParser::Parse("select * whre { }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

TEST(BindTest, ResolvesBarePredicate) {
  Database db = MakeDb();
  auto q = SparqlParser::ParseAndBind(
      "select ?x ?y where { ?x actedIn ?y . }", db);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->NumEdges(), 1u);
  EXPECT_EQ(q->Edge(0).label, *db.LabelOf("actedIn"));
}

TEST(BindTest, ResolvesIriVariants) {
  Database db = MakeDb();
  // Written with brackets, stored with brackets.
  ASSERT_TRUE(SparqlParser::ParseAndBind(
                  "select * where { ?x <http://yago/created> ?y }", db)
                  .ok());
  // Written bare, stored with ":" prefix.
  ASSERT_TRUE(
      SparqlParser::ParseAndBind("select * where { ?x owns ?y }", db).ok());
}

TEST(BindTest, UnknownPredicateIsNotFound) {
  Database db = MakeDb();
  auto q = SparqlParser::ParseAndBind("select * where { ?x nope ?y }", db);
  ASSERT_FALSE(q.ok());
  EXPECT_TRUE(q.status().IsNotFound());
}

TEST(BindTest, ProjectionMustUseBoundVars) {
  Database db = MakeDb();
  auto q = SparqlParser::ParseAndBind(
      "select ?zzz where { ?x actedIn ?y . }", db);
  ASSERT_FALSE(q.ok());
  EXPECT_TRUE(q.status().IsInvalidArgument());
}

TEST(BindTest, SelfLoopRejected) {
  Database db = MakeDb();
  auto q =
      SparqlParser::ParseAndBind("select * where { ?x actedIn ?x }", db);
  ASSERT_FALSE(q.ok());
  EXPECT_TRUE(q.status().IsInvalidArgument());
}

TEST(AggregateParserTest, ParsesCountStar) {
  auto r = SparqlParser::Parse(
      "select (count(*) as ?c) where { ?x p ?y . }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->aggregate, AggregateKind::kCount);
  EXPECT_EQ(r->aggregate_alias, "c");
  EXPECT_TRUE(r->group_by_var.empty());
}

TEST(AggregateParserTest, ParsesCountDistinct) {
  auto r = SparqlParser::Parse(
      "SELECT (COUNT(DISTINCT ?y) AS ?n) WHERE { ?x p ?y . }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->aggregate, AggregateKind::kCountDistinct);
  EXPECT_EQ(r->distinct_count_var, "y");
  EXPECT_EQ(r->aggregate_alias, "n");
}

TEST(AggregateParserTest, ParsesAsk) {
  auto r = SparqlParser::Parse("ask { ?x p ?y . }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->aggregate, AggregateKind::kAsk);
}

TEST(AggregateParserTest, ParsesAskWithWhereKeyword) {
  auto r = SparqlParser::Parse("ASK WHERE { ?x p ?y . }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->aggregate, AggregateKind::kAsk);
}

TEST(AggregateParserTest, ParsesGroupByWithCount) {
  auto r = SparqlParser::Parse(
      "select ?x (count(*) as ?c) where { ?x p ?y . } group by ?x");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->aggregate, AggregateKind::kCount);
  EXPECT_EQ(r->group_by_var, "x");
}

TEST(AggregateParserTest, GroupByWithoutProjectedKeyAccepted) {
  auto r = SparqlParser::Parse(
      "select (count(*) as ?c) where { ?x p ?y . } group by ?x");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->group_by_var, "x");
}

TEST(AggregateParserTest, RejectsUnsupportedAggregateFunctions) {
  auto r = SparqlParser::Parse(
      "select (sum(?y) as ?s) where { ?x p ?y . }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unsupported aggregate"),
            std::string::npos);
}

TEST(AggregateParserTest, RejectsPlainCountVar) {
  auto r = SparqlParser::Parse(
      "select (count(?y) as ?c) where { ?x p ?y . }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("COUNT(*) or"), std::string::npos);
}

TEST(AggregateParserTest, RejectsTwoAggregates) {
  auto r = SparqlParser::Parse(
      "select (count(*) as ?a) (count(*) as ?b) where { ?x p ?y . }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("at most one aggregate"),
            std::string::npos);
}

TEST(AggregateParserTest, RejectsMissingAlias) {
  EXPECT_FALSE(
      SparqlParser::Parse("select (count(*)) where { ?x p ?y . }").ok());
}

TEST(AggregateParserTest, RejectsSelectDistinctWithAggregate) {
  auto r = SparqlParser::Parse(
      "select distinct (count(*) as ?c) where { ?x p ?y . }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("SELECT DISTINCT"), std::string::npos);
}

TEST(AggregateParserTest, RejectsGroupByWithAsk) {
  auto r = SparqlParser::Parse("ask { ?x p ?y . } group by ?x");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("ASK"), std::string::npos);
}

TEST(AggregateParserTest, RejectsGroupByWithoutAggregate) {
  auto r = SparqlParser::Parse(
      "select ?x where { ?x p ?y . } group by ?x");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("GROUP BY requires"),
            std::string::npos);
}

TEST(AggregateParserTest, RejectsGroupByWithCountDistinct) {
  auto r = SparqlParser::Parse(
      "select (count(distinct ?y) as ?c) where { ?x p ?y . } group by ?x");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("COUNT(DISTINCT) with GROUP BY"),
            std::string::npos);
}

TEST(AggregateParserTest, RejectsTwoGroupByVariables) {
  auto r = SparqlParser::Parse(
      "select (count(*) as ?c) where { ?x p ?y . } group by ?x ?y");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("exactly one variable"),
            std::string::npos);
}

TEST(AggregateParserTest, RejectsHaving) {
  auto r = SparqlParser::Parse(
      "select (count(*) as ?c) where { ?x p ?y . } group by ?x having ?c");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("HAVING"), std::string::npos);
}

TEST(AggregateParserTest, RejectsNonAggregatedProjection) {
  auto r = SparqlParser::Parse(
      "select ?y (count(*) as ?c) where { ?x p ?y . } group by ?x");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("requires GROUP BY"),
            std::string::npos);
}

TEST(AggregateParserTest, RejectsTrailingInput) {
  auto r = SparqlParser::Parse("select * where { ?x p ?y . } limit 10");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("trailing"), std::string::npos);
}

TEST(AggregateBindTest, BindsSpecOntoGraph) {
  Database db = MakeDb();
  auto q = SparqlParser::ParseAndBind(
      "select ?x (count(*) as ?c) where { ?x actedIn ?y . } group by ?x",
      db);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->aggregate().kind, AggregateKind::kCount);
  EXPECT_EQ(q->aggregate().group_var, q->FindVar("x"));
  EXPECT_EQ(q->aggregate().alias, "c");
}

TEST(AggregateBindTest, DistinctVarMustAppearInWhere) {
  Database db = MakeDb();
  auto q = SparqlParser::ParseAndBind(
      "select (count(distinct ?zzz) as ?c) where { ?x actedIn ?y . }", db);
  ASSERT_FALSE(q.ok());
  EXPECT_TRUE(q.status().IsInvalidArgument());
}

TEST(AggregateBindTest, GroupVarMustAppearInWhere) {
  Database db = MakeDb();
  auto q = SparqlParser::ParseAndBind(
      "select (count(*) as ?c) where { ?x actedIn ?y . } group by ?zzz",
      db);
  ASSERT_FALSE(q.ok());
  EXPECT_TRUE(q.status().IsInvalidArgument());
}

TEST(BindTest, SharedVariablesUnify) {
  Database db = MakeDb();
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?x actedIn ?y . ?y actedIn ?z . }", db);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->NumVars(), 3u);
  EXPECT_EQ(q->Edge(0).dst, q->Edge(1).src);
}

}  // namespace
}  // namespace wireframe
