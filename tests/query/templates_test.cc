#include "query/templates.h"

#include <gtest/gtest.h>

#include "query/shape.h"

namespace wireframe {
namespace {

TEST(TemplatesTest, SnowflakeShape) {
  QueryTemplate t = SnowflakeTemplate();
  EXPECT_EQ(t.num_slots, 9u);
  QueryGraph q = t.Instantiate(std::vector<LabelId>(9, 3));
  EXPECT_EQ(q.NumVars(), 10u);
  EXPECT_EQ(q.NumEdges(), 9u);
  EXPECT_TRUE(q.distinct());
  // Hub ?x has degree 3; arm vars degree 3; leaves degree 1.
  EXPECT_EQ(q.Degree(q.FindVar("x")), 3u);
  EXPECT_EQ(q.Degree(q.FindVar("m")), 3u);
  EXPECT_EQ(q.Degree(q.FindVar("f")), 1u);
  EXPECT_TRUE(IsAcyclic(q));
}

TEST(TemplatesTest, DiamondShape) {
  QueryGraph q = DiamondTemplate().Instantiate({0, 1, 2, 3});
  EXPECT_EQ(q.NumVars(), 4u);
  EXPECT_EQ(q.NumEdges(), 4u);
  EXPECT_FALSE(IsAcyclic(q));
  for (VarId v = 0; v < q.NumVars(); ++v) EXPECT_EQ(q.Degree(v), 2u);
}

TEST(TemplatesTest, InstantiateAssignsSlotLabels) {
  QueryGraph q = DiamondTemplate().Instantiate({10, 11, 12, 13});
  EXPECT_EQ(q.Edge(0).label, 10u);
  EXPECT_EQ(q.Edge(1).label, 11u);
  EXPECT_EQ(q.Edge(2).label, 12u);
  EXPECT_EQ(q.Edge(3).label, 13u);
}

TEST(TemplatesTest, ChainTemplate) {
  QueryGraph q = ChainTemplate(4).Instantiate({0, 1, 2, 3});
  EXPECT_EQ(q.NumVars(), 5u);
  EXPECT_EQ(q.NumEdges(), 4u);
  EXPECT_TRUE(IsAcyclic(q));
  EXPECT_EQ(q.Degree(q.FindVar("v0")), 1u);
  EXPECT_EQ(q.Degree(q.FindVar("v2")), 2u);
}

TEST(TemplatesTest, StarTemplate) {
  QueryGraph q = StarTemplate(6).Instantiate({0, 1, 2, 3, 4, 5});
  EXPECT_EQ(q.NumVars(), 7u);
  EXPECT_EQ(q.Degree(q.FindVar("x")), 6u);
  EXPECT_TRUE(IsAcyclic(q));
}

TEST(TemplatesTest, CycleTemplate) {
  QueryGraph q = CycleTemplate(4).Instantiate({0, 0, 0, 0});
  EXPECT_EQ(q.NumVars(), 4u);
  EXPECT_FALSE(IsAcyclic(q));
}

TEST(TemplatesDeathTest, WrongLabelCountChecks) {
  EXPECT_DEATH(DiamondTemplate().Instantiate({0, 1}), "needs 4 labels");
}

}  // namespace
}  // namespace wireframe
