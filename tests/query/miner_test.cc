#include "query/miner.h"

#include <gtest/gtest.h>

#include "exec/engine.h"
#include "exec/sink.h"

namespace wireframe {
namespace {

// A: 1->2 ; B: 2->3 ; C: 9->10 (C never joins A or B).
Database MakeDb() {
  DatabaseBuilder b;
  b.Add("n1", "A", "n2");
  b.Add("n2", "B", "n3");
  b.Add("n9", "C", "n10");
  return std::move(b).Build();
}

class MinerTest : public ::testing::Test {
 protected:
  MinerTest() : db_(MakeDb()), cat_(Catalog::Build(db_.store())) {}
  Database db_;
  Catalog cat_;
};

TEST_F(MinerTest, MinesNonEmptyChains) {
  QueryMiner miner(db_, cat_);
  MinerOptions options;
  MinerReport report;
  auto mined = miner.Mine(ChainTemplate(2), options, &report);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  // Only A/B chains: v0 -A-> v1 -B-> v2.
  ASSERT_EQ(mined->size(), 1u);
  EXPECT_EQ(mined.value()[0].labels,
            (std::vector<LabelId>{*db_.LabelOf("A"), *db_.LabelOf("B")}));
  EXPECT_TRUE(report.exhausted);
  EXPECT_GT(report.pruned_by_2gram, 0u);
}

TEST_F(MinerTest, MinedQueriesAreNonEmpty) {
  QueryMiner miner(db_, cat_);
  MinerOptions options;
  auto mined = miner.Mine(ChainTemplate(1), options, nullptr);
  ASSERT_TRUE(mined.ok());
  // Every single-edge query over a non-empty label qualifies.
  EXPECT_EQ(mined->size(), 3u);
  auto engine = MakeEngine("NJ");
  for (const MinedQuery& mq : mined.value()) {
    QueryGraph q = ChainTemplate(1).Instantiate(mq.labels);
    CountingSink sink;
    auto stats = engine->Run(db_, cat_, q, EngineOptions{}, &sink);
    ASSERT_TRUE(stats.ok());
    EXPECT_GT(sink.count(), 0u);
  }
}

TEST_F(MinerTest, MaxQueriesCapRespected) {
  QueryMiner miner(db_, cat_);
  MinerOptions options;
  options.max_queries = 1;
  MinerReport report;
  auto mined = miner.Mine(ChainTemplate(1), options, &report);
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(mined->size(), 1u);
  EXPECT_FALSE(report.exhausted);
}

TEST_F(MinerTest, TwoGramPruningSkipsDataProbes) {
  QueryMiner miner(db_, cat_);
  MinerOptions options;
  options.verify_nonempty = true;
  MinerReport report;
  auto mined = miner.Mine(ChainTemplate(2), options, &report);
  ASSERT_TRUE(mined.ok());
  // C cannot join anything: assignments starting with C must be pruned at
  // depth 0/1 without reaching verification.
  EXPECT_EQ(report.rejected_empty, 0u);
}

TEST_F(MinerTest, WithoutVerificationKeeps2GramSurvivors) {
  QueryMiner miner(db_, cat_);
  MinerOptions options;
  options.verify_nonempty = false;
  auto with_verify = miner.Mine(ChainTemplate(2), MinerOptions{}, nullptr);
  auto without = miner.Mine(ChainTemplate(2), options, nullptr);
  ASSERT_TRUE(with_verify.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_GE(without->size(), with_verify->size());
}

TEST_F(MinerTest, DiamondOverTinyGraphFindsNothing) {
  QueryMiner miner(db_, cat_);
  MinerOptions options;
  auto mined = miner.Mine(DiamondTemplate(), options, nullptr);
  ASSERT_TRUE(mined.ok());
  EXPECT_TRUE(mined->empty());
}

TEST_F(MinerTest, CandidateBudgetStopsSearch) {
  QueryMiner miner(db_, cat_);
  MinerOptions options;
  options.max_candidates = 2;
  MinerReport report;
  auto mined = miner.Mine(ChainTemplate(2), options, &report);
  ASSERT_TRUE(mined.ok());
  EXPECT_FALSE(report.exhausted);
  EXPECT_LE(report.candidates, 3u);
}

}  // namespace
}  // namespace wireframe
