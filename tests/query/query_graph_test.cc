#include "query/query_graph.h"

#include <gtest/gtest.h>

namespace wireframe {
namespace {

TEST(QueryGraphTest, AddVarsAndEdges) {
  QueryGraph q;
  VarId x = q.AddVar("x");
  VarId y = q.AddVar("y");
  uint32_t e = q.AddEdge(x, 7, y);
  EXPECT_EQ(q.NumVars(), 2u);
  EXPECT_EQ(q.NumEdges(), 1u);
  EXPECT_EQ(q.Edge(e).src, x);
  EXPECT_EQ(q.Edge(e).label, 7u);
  EXPECT_EQ(q.Edge(e).dst, y);
}

TEST(QueryGraphTest, VarByNameReuses) {
  QueryGraph q;
  VarId a = q.VarByName("a");
  EXPECT_EQ(q.VarByName("a"), a);
  EXPECT_EQ(q.NumVars(), 1u);
  EXPECT_NE(q.VarByName("b"), a);
}

TEST(QueryGraphTest, FindVar) {
  QueryGraph q;
  q.AddVar("x");
  EXPECT_EQ(q.FindVar("x"), 0u);
  EXPECT_EQ(q.FindVar("nope"), kInvalidVar);
}

TEST(QueryGraphTest, IncidentEdgesAndDegree) {
  QueryGraph q;
  VarId x = q.AddVar("x"), y = q.AddVar("y"), z = q.AddVar("z");
  uint32_t e0 = q.AddEdge(x, 0, y);
  uint32_t e1 = q.AddEdge(y, 1, z);
  EXPECT_EQ(q.Degree(x), 1u);
  EXPECT_EQ(q.Degree(y), 2u);
  EXPECT_EQ(q.IncidentEdges(y), (std::vector<uint32_t>{e0, e1}));
}

TEST(QueryGraphTest, EdgeHelpers) {
  QueryEdge e{2, 9, 5};
  EXPECT_EQ(e.Other(2), 5u);
  EXPECT_EQ(e.Other(5), 2u);
  EXPECT_TRUE(e.Touches(2));
  EXPECT_TRUE(e.Touches(5));
  EXPECT_FALSE(e.Touches(3));
}

TEST(QueryGraphTest, OutputVarsDefaultsToAll) {
  QueryGraph q;
  q.AddVar("a");
  q.AddVar("b");
  EXPECT_EQ(q.OutputVars(), (std::vector<VarId>{0, 1}));
  q.SetProjection({1});
  EXPECT_EQ(q.OutputVars(), (std::vector<VarId>{1}));
}

TEST(QueryGraphTest, ToStringRendersSparql) {
  QueryGraph q;
  VarId x = q.AddVar("x"), y = q.AddVar("y");
  q.AddEdge(x, 0, y);
  q.SetDistinct(true);
  std::string s = q.ToString([](LabelId) { return std::string("knows"); });
  EXPECT_EQ(s, "select distinct ?x ?y where { ?x knows ?y . }");
}

TEST(QueryGraphDeathTest, DuplicateVarNameChecks) {
  QueryGraph q;
  q.AddVar("x");
  EXPECT_DEATH(q.AddVar("x"), "duplicate variable");
}

TEST(QueryGraphDeathTest, SelfLoopChecks) {
  QueryGraph q;
  VarId x = q.AddVar("x");
  EXPECT_DEATH(q.AddEdge(x, 0, x), "self-loop");
}

}  // namespace
}  // namespace wireframe
