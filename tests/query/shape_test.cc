#include "query/shape.h"

#include <set>

#include <gtest/gtest.h>

#include "query/templates.h"

namespace wireframe {
namespace {

QueryGraph Chain(uint32_t n) {
  return ChainTemplate(n).Instantiate(std::vector<LabelId>(n, 0));
}

TEST(ShapeTest, ChainIsAcyclicConnected) {
  QueryShape s = AnalyzeShape(Chain(3));
  EXPECT_TRUE(s.connected);
  EXPECT_TRUE(s.acyclic);
  EXPECT_TRUE(s.cycles.empty());
  EXPECT_TRUE(IsAcyclic(Chain(5)));
  EXPECT_TRUE(IsConnected(Chain(5)));
}

TEST(ShapeTest, SnowflakeIsAcyclic) {
  QueryGraph q =
      SnowflakeTemplate().Instantiate(std::vector<LabelId>(9, 0));
  QueryShape s = AnalyzeShape(q);
  EXPECT_TRUE(s.connected);
  EXPECT_TRUE(s.acyclic);
}

TEST(ShapeTest, DiamondHasOneFourCycle) {
  QueryGraph q = DiamondTemplate().Instantiate({0, 1, 2, 3});
  QueryShape s = AnalyzeShape(q);
  EXPECT_TRUE(s.connected);
  EXPECT_FALSE(s.acyclic);
  ASSERT_EQ(s.cycles.size(), 1u);
  EXPECT_EQ(s.cycles[0].Length(), 4u);
}

TEST(ShapeTest, CycleEdgesConnectConsecutiveVars) {
  QueryGraph q = DiamondTemplate().Instantiate({0, 1, 2, 3});
  QueryCycle c = AnalyzeShape(q).cycles[0];
  const uint32_t m = c.Length();
  ASSERT_EQ(c.edges.size(), m);
  for (uint32_t i = 0; i < m; ++i) {
    const QueryEdge& e = q.Edge(c.edges[i]);
    VarId a = c.vars[i];
    VarId b = c.vars[(i + 1) % m];
    EXPECT_TRUE((e.src == a && e.dst == b) || (e.src == b && e.dst == a))
        << "cycle edge " << i << " does not connect its corners";
  }
  // All cycle vars distinct.
  std::set<VarId> distinct(c.vars.begin(), c.vars.end());
  EXPECT_EQ(distinct.size(), m);
}

TEST(ShapeTest, TriangleCycle) {
  QueryGraph q = CycleTemplate(3).Instantiate({0, 1, 2});
  QueryShape s = AnalyzeShape(q);
  EXPECT_FALSE(s.acyclic);
  ASSERT_EQ(s.cycles.size(), 1u);
  EXPECT_EQ(s.cycles[0].Length(), 3u);
}

TEST(ShapeTest, ParallelEdgesFormTwoCycle) {
  QueryGraph q;
  VarId x = q.AddVar("x"), y = q.AddVar("y");
  q.AddEdge(x, 0, y);
  q.AddEdge(y, 1, x);
  QueryShape s = AnalyzeShape(q);
  EXPECT_FALSE(s.acyclic);
  ASSERT_EQ(s.cycles.size(), 1u);
  EXPECT_EQ(s.cycles[0].Length(), 2u);
}

TEST(ShapeTest, DisconnectedDetected) {
  QueryGraph q;
  VarId a = q.AddVar("a"), b = q.AddVar("b");
  VarId c = q.AddVar("c"), d = q.AddVar("d");
  q.AddEdge(a, 0, b);
  q.AddEdge(c, 0, d);
  QueryShape s = AnalyzeShape(q);
  EXPECT_FALSE(s.connected);
  EXPECT_TRUE(s.acyclic);
}

TEST(ShapeTest, TwoIndependentCycles) {
  // Two triangles sharing one vertex: cycle basis of size 2.
  QueryGraph q;
  VarId h = q.AddVar("h");
  VarId a = q.AddVar("a"), b = q.AddVar("b");
  VarId c = q.AddVar("c"), d = q.AddVar("d");
  q.AddEdge(h, 0, a);
  q.AddEdge(a, 0, b);
  q.AddEdge(b, 0, h);
  q.AddEdge(h, 0, c);
  q.AddEdge(c, 0, d);
  q.AddEdge(d, 0, h);
  QueryShape s = AnalyzeShape(q);
  EXPECT_TRUE(s.connected);
  EXPECT_EQ(s.cycles.size(), 2u);
}

TEST(ShapeTest, EmptyQueryIsTriviallyAcyclic) {
  QueryGraph q;
  QueryShape s = AnalyzeShape(q);
  EXPECT_TRUE(s.connected);
  EXPECT_TRUE(s.acyclic);
}

TEST(ShapeTest, FiveCycle) {
  QueryGraph q = CycleTemplate(5).Instantiate({0, 1, 2, 3, 4});
  QueryShape s = AnalyzeShape(q);
  ASSERT_EQ(s.cycles.size(), 1u);
  EXPECT_EQ(s.cycles[0].Length(), 5u);
}

}  // namespace
}  // namespace wireframe
