#include "query/canonical.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "query/query_graph.h"

namespace wireframe {
namespace {

QueryGraph Chain(const std::vector<std::string>& vars,
                 const std::vector<LabelId>& labels) {
  QueryGraph q;
  for (const std::string& v : vars) q.AddVar(v);
  for (size_t i = 0; i < labels.size(); ++i) {
    q.AddEdge(static_cast<VarId>(i), labels[i],
              static_cast<VarId>(i + 1));
  }
  return q;
}

TEST(CanonicalTest, KeyIsStableUnderVariableRenaming) {
  const QueryGraph a = Chain({"w", "x", "y", "z"}, {1, 2, 3});
  const QueryGraph b = Chain({"p", "q", "r", "s"}, {1, 2, 3});
  const CanonicalQuery ca = CanonicalizeQuery(a);
  const CanonicalQuery cb = CanonicalizeQuery(b);
  EXPECT_EQ(ca.key, cb.key);
  EXPECT_EQ(ca.query.NumVars(), 4u);
  EXPECT_EQ(ca.query.NumEdges(), 3u);
}

TEST(CanonicalTest, KeyIsStableUnderEdgeAndIdPermutation) {
  // Same chain shape, but variables added in a different order and the
  // patterns listed reversed — the var ids are a permutation.
  QueryGraph a;
  const VarId w = a.AddVar("w"), x = a.AddVar("x"), y = a.AddVar("y"),
              z = a.AddVar("z");
  a.AddEdge(w, 1, x);
  a.AddEdge(x, 2, y);
  a.AddEdge(y, 3, z);
  QueryGraph b;
  const VarId bz = b.AddVar("z"), by = b.AddVar("y"), bx = b.AddVar("x"),
              bw = b.AddVar("w");
  b.AddEdge(by, 3, bz);
  b.AddEdge(bx, 2, by);
  b.AddEdge(bw, 1, bx);
  EXPECT_EQ(CanonicalizeQuery(a).key, CanonicalizeQuery(b).key);
}

TEST(CanonicalTest, LabelsDistinguishOtherwiseIsomorphicShapes) {
  const QueryGraph a = Chain({"w", "x", "y"}, {1, 2});
  const QueryGraph b = Chain({"w", "x", "y"}, {1, 3});
  EXPECT_NE(CanonicalizeQuery(a).key, CanonicalizeQuery(b).key);
}

TEST(CanonicalTest, DirectionDistinguishes) {
  QueryGraph a;
  const VarId ax = a.AddVar("x"), ay = a.AddVar("y");
  a.AddEdge(ax, 5, ay);
  a.AddEdge(ax, 5, ay);  // parallel duplicate edges
  QueryGraph b;
  const VarId bx = b.AddVar("x"), by = b.AddVar("y");
  b.AddEdge(bx, 5, by);
  b.AddEdge(by, 5, bx);  // one reversed
  EXPECT_NE(CanonicalizeQuery(a).key, CanonicalizeQuery(b).key);
}

TEST(CanonicalTest, StructureDistinguishesChainFromStar) {
  QueryGraph chain = Chain({"a", "b", "c", "d"}, {1, 1, 1});
  QueryGraph star;
  const VarId hub = star.AddVar("h");
  for (int i = 0; i < 3; ++i) {
    star.AddEdge(hub, 1, star.AddVar("l" + std::to_string(i)));
  }
  EXPECT_NE(CanonicalizeQuery(chain).key, CanonicalizeQuery(star).key);
}

TEST(CanonicalTest, MappingIsAPermutationThatPreservesEdges) {
  QueryGraph q;
  const VarId x = q.AddVar("x"), e = q.AddVar("e"), y = q.AddVar("y"),
              z = q.AddVar("z");
  q.AddEdge(x, 1, e);
  q.AddEdge(e, 2, y);
  q.AddEdge(y, 3, z);
  q.AddEdge(x, 4, z);  // cyclic diamond
  const CanonicalQuery c = CanonicalizeQuery(q);
  ASSERT_EQ(c.to_canonical.size(), 4u);
  std::set<VarId> image(c.to_canonical.begin(), c.to_canonical.end());
  EXPECT_EQ(image.size(), 4u);  // bijective
  // Every original pattern exists, relabeled, in the canonical form.
  for (const QueryEdge& edge : q.edges()) {
    bool found = false;
    for (const QueryEdge& ce : c.query.edges()) {
      if (ce.src == c.to_canonical[edge.src] &&
          ce.dst == c.to_canonical[edge.dst] && ce.label == edge.label) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
  EXPECT_EQ(c.query.NumEdges(), q.NumEdges());
}

TEST(CanonicalTest, ProjectionAndDistinctDoNotAffectTheKey) {
  QueryGraph a = Chain({"x", "y", "z"}, {7, 8});
  QueryGraph b = Chain({"x", "y", "z"}, {7, 8});
  b.SetProjection({2, 0});
  b.SetDistinct(true);
  EXPECT_EQ(CanonicalizeQuery(a).key, CanonicalizeQuery(b).key);
}

TEST(CanonicalTest, HighSymmetryStarsAgreeAcrossNamings) {
  // All leaves are automorphic: every ordering ties, so the search hits
  // its expansion cap — the encodings still agree across namings.
  auto star = [](int leaves, bool reversed) {
    QueryGraph q;
    std::vector<VarId> ids;
    if (reversed) {
      for (int i = leaves; i >= 0; --i) {
        ids.push_back(q.AddVar("v" + std::to_string(i)));
      }
      std::reverse(ids.begin(), ids.end());
    } else {
      for (int i = 0; i <= leaves; ++i) {
        ids.push_back(q.AddVar("v" + std::to_string(i)));
      }
    }
    for (int i = 1; i <= leaves; ++i) q.AddEdge(ids[0], 9, ids[i]);
    return q;
  };
  for (int leaves : {3, 8, 11}) {
    EXPECT_EQ(CanonicalizeQuery(star(leaves, false)).key,
              CanonicalizeQuery(star(leaves, true)).key)
        << leaves << " leaves";
  }
}

TEST(CanonicalTest, CyclesAgreeAcrossRotations) {
  auto cycle = [](int n, int rotate) {
    QueryGraph q;
    std::vector<VarId> ids;
    for (int i = 0; i < n; ++i) {
      ids.push_back(q.AddVar("v" + std::to_string(i)));
    }
    for (int i = 0; i < n; ++i) {
      const int s = (i + rotate) % n;
      q.AddEdge(ids[s], 3, ids[(s + 1) % n]);
    }
    return q;
  };
  const std::string base = CanonicalizeQuery(cycle(6, 0)).key;
  for (int r = 1; r < 6; ++r) {
    EXPECT_EQ(CanonicalizeQuery(cycle(6, r)).key, base) << "rotation " << r;
  }
}

}  // namespace
}  // namespace wireframe
