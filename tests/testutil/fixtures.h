#ifndef WIREFRAME_TESTS_TESTUTIL_FIXTURES_H_
#define WIREFRAME_TESTS_TESTUTIL_FIXTURES_H_

#include <memory>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "datagen/figures.h"
#include "query/query_graph.h"
#include "storage/database.h"

namespace wireframe::testutil {

/// Shared fixtures over the paper's running examples (datagen/figures.h),
/// so each test file does not re-spell the database + catalog + bound
/// query boilerplate. SetUp() fails the test if query binding fails, so
/// test bodies can use query() directly.
template <Database (*MakeGraph)(),
          Result<QueryGraph> (*MakeQuery)(const Database&)>
class FigFixture : public ::testing::Test {
 protected:
  FigFixture() : db_(MakeGraph()), cat_(Catalog::Build(db_.store())) {}

  void SetUp() override {
    auto q = MakeQuery(db_);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    q_ = std::make_unique<QueryGraph>(std::move(q).value());
  }

  const QueryGraph& query() const { return *q_; }

  Database db_;
  Catalog cat_;

 private:
  std::unique_ptr<QueryGraph> q_;
};

/// Fig. 1 / Fig. 2: the acyclic chain CQ_C (?w -A-> ?x -B-> ?y -C-> ?z)
/// with 12 embeddings and an 8-edge ideal answer graph.
using Fig1Fixture = FigFixture<MakeFig1Graph, MakeFig1Query>;

/// Fig. 4: the cyclic diamond CQ_D (vars x, e, y, z) with 2 embeddings;
/// node burnback alone leaves 10 AG edges, the ideal AG has 8.
using Fig4Fixture = FigFixture<MakeFig4Graph, MakeFig4Query>;

}  // namespace wireframe::testutil

#endif  // WIREFRAME_TESTS_TESTUTIL_FIXTURES_H_
