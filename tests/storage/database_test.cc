#include "storage/database.h"

#include <gtest/gtest.h>

namespace wireframe {
namespace {

TEST(DatabaseTest, BuilderInternsStringsOnce) {
  DatabaseBuilder b;
  b.Add("alice", "knows", "bob");
  b.Add("bob", "knows", "alice");
  b.Add("alice", "likes", "bob");
  Database db = std::move(b).Build();
  EXPECT_EQ(db.nodes().Size(), 2u);
  EXPECT_EQ(db.labels().Size(), 2u);
  EXPECT_EQ(db.store().NumTriples(), 3u);
}

TEST(DatabaseTest, LabelOfAndNodeOf) {
  DatabaseBuilder b;
  b.Add("a", "p", "b");
  Database db = std::move(b).Build();
  EXPECT_TRUE(db.LabelOf("p").has_value());
  EXPECT_FALSE(db.LabelOf("q").has_value());
  EXPECT_TRUE(db.NodeOf("a").has_value());
  EXPECT_TRUE(db.NodeOf("b").has_value());
  EXPECT_FALSE(db.NodeOf("c").has_value());
}

TEST(DatabaseTest, IdBasedAddMatchesStringAdd) {
  DatabaseBuilder b;
  NodeId s = b.nodes().Intern("s");
  NodeId o = b.nodes().Intern("o");
  LabelId p = b.labels().Intern("p");
  b.Add(s, p, o);
  Database db = std::move(b).Build();
  EXPECT_TRUE(db.store().HasTriple(*db.NodeOf("s"), *db.LabelOf("p"),
                                   *db.NodeOf("o")));
}

TEST(DatabaseTest, EdgesQueryableThroughStore) {
  DatabaseBuilder b;
  b.Add("x", "p", "y");
  b.Add("x", "p", "z");
  Database db = std::move(b).Build();
  auto out = db.store().OutNeighbors(*db.LabelOf("p"), *db.NodeOf("x"));
  EXPECT_EQ(out.size(), 2u);
}

}  // namespace
}  // namespace wireframe
