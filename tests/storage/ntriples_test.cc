#include "storage/ntriples.h"

#include <sstream>

#include <gtest/gtest.h>

namespace wireframe {
namespace {

TEST(NTriplesTest, ParsesIriTriple) {
  std::string s, p, o;
  auto r = NTriples::ParseLine("<a> <b> <c> .", &s, &p, &o);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value());
  EXPECT_EQ(s, "<a>");
  EXPECT_EQ(p, "<b>");
  EXPECT_EQ(o, "<c>");
}

TEST(NTriplesTest, ParsesLiteralWithLanguageTag) {
  std::string s, p, o;
  auto r = NTriples::ParseLine(
      "<x> <label> \"Hello World\"@en .", &s, &p, &o);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(o, "\"Hello World\"@en");
}

TEST(NTriplesTest, ParsesLiteralWithDatatype) {
  std::string s, p, o;
  auto r = NTriples::ParseLine(
      "<x> <age> \"42\"^^<http://www.w3.org/2001/XMLSchema#int> .", &s, &p,
      &o);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(o, "\"42\"^^<http://www.w3.org/2001/XMLSchema#int>");
}

TEST(NTriplesTest, ParsesEscapedQuoteInLiteral) {
  std::string s, p, o;
  auto r = NTriples::ParseLine("<x> <says> \"a \\\"quoted\\\" word\" .", &s,
                               &p, &o);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(o, "\"a \\\"quoted\\\" word\"");
}

TEST(NTriplesTest, ParsesBlankNodes) {
  std::string s, p, o;
  auto r = NTriples::ParseLine("_:b1 <knows> _:b2 .", &s, &p, &o);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(s, "_:b1");
  EXPECT_EQ(o, "_:b2");
}

TEST(NTriplesTest, SkipsCommentsAndBlankLines) {
  std::string s, p, o;
  auto r1 = NTriples::ParseLine("# a comment", &s, &p, &o);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1.value());
  auto r2 = NTriples::ParseLine("   ", &s, &p, &o);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2.value());
}

TEST(NTriplesTest, RejectsMalformedLines) {
  std::string s, p, o;
  EXPECT_FALSE(NTriples::ParseLine("<a> <b>", &s, &p, &o).ok());
  EXPECT_FALSE(NTriples::ParseLine("<a> <b> <c>", &s, &p, &o).ok());  // no dot
  EXPECT_FALSE(NTriples::ParseLine("<a <b> <c> .", &s, &p, &o).ok());
  EXPECT_FALSE(NTriples::ParseLine("<a> <b> \"open .", &s, &p, &o).ok());
}

TEST(NTriplesTest, ReadStreamBuildsDatabase) {
  std::istringstream in(
      "# header\n"
      "<p1> <actedIn> <m1> .\n"
      "<p1> <actedIn> <m2> .\n"
      "\n"
      "<p2> <actedIn> <m1> .\r\n");
  DatabaseBuilder builder;
  auto count = NTriples::ReadStream(in, &builder);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count.value(), 3u);
  Database db = std::move(builder).Build();
  EXPECT_EQ(db.store().NumTriples(), 3u);
  ASSERT_TRUE(db.LabelOf("<actedIn>").has_value());
  EXPECT_EQ(db.store().PredicateCardinality(*db.LabelOf("<actedIn>")), 3u);
}

TEST(NTriplesTest, ReadStreamReportsLineNumberOnError) {
  std::istringstream in("<a> <b> <c> .\nbogus line\n");
  DatabaseBuilder builder;
  auto r = NTriples::ReadStream(in, &builder);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(NTriplesTest, RoundTripThroughWriter) {
  DatabaseBuilder builder;
  builder.Add("<s1>", "<p>", "<o1>");
  builder.Add("<s2>", "<q>", "\"lit\"@en");
  Database db = std::move(builder).Build();

  std::ostringstream out;
  ASSERT_TRUE(NTriples::WriteStream(db, out).ok());

  std::istringstream in(out.str());
  DatabaseBuilder reread;
  auto count = NTriples::ReadStream(in, &reread);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 2u);
  Database db2 = std::move(reread).Build();
  EXPECT_EQ(db2.store().NumTriples(), 2u);
  EXPECT_TRUE(db2.NodeOf("\"lit\"@en").has_value());
}

TEST(NTriplesTest, ReadFileMissingPathIsIOError) {
  DatabaseBuilder builder;
  auto r = NTriples::ReadFile("/nonexistent/path.nt", &builder);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace wireframe
