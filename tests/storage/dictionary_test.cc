#include "storage/dictionary.h"

#include <gtest/gtest.h>

namespace wireframe {
namespace {

TEST(DictionaryTest, InternAssignsDenseIds) {
  Dictionary d;
  EXPECT_EQ(d.Intern("a"), 0u);
  EXPECT_EQ(d.Intern("b"), 1u);
  EXPECT_EQ(d.Intern("c"), 2u);
  EXPECT_EQ(d.Size(), 3u);
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary d;
  uint32_t id = d.Intern("x");
  EXPECT_EQ(d.Intern("x"), id);
  EXPECT_EQ(d.Size(), 1u);
}

TEST(DictionaryTest, LookupFindsInterned) {
  Dictionary d;
  d.Intern("alpha");
  d.Intern("beta");
  EXPECT_EQ(d.Lookup("beta"), 1u);
  EXPECT_EQ(d.Lookup("gamma"), Dictionary::kNotFound);
}

TEST(DictionaryTest, TermRoundTrips) {
  Dictionary d;
  uint32_t id = d.Intern("<http://yago/actedIn>");
  EXPECT_EQ(d.Term(id), "<http://yago/actedIn>");
}

TEST(DictionaryTest, EmptyStringIsAValidTerm) {
  Dictionary d;
  uint32_t id = d.Intern("");
  EXPECT_EQ(d.Lookup(""), id);
  EXPECT_EQ(d.Term(id), "");
}

TEST(DictionaryTest, ManyTerms) {
  Dictionary d;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(d.Intern("term" + std::to_string(i)),
              static_cast<uint32_t>(i));
  }
  EXPECT_EQ(d.Size(), 10000u);
  EXPECT_EQ(d.Lookup("term9999"), 9999u);
  EXPECT_EQ(d.Term(1234), "term1234");
}

TEST(DictionaryTest, MoveTransfersContents) {
  Dictionary d;
  d.Intern("keep");
  Dictionary moved = std::move(d);
  EXPECT_EQ(moved.Lookup("keep"), 0u);
}

}  // namespace
}  // namespace wireframe
