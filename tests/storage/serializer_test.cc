#include "storage/serializer.h"

#include <sstream>

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "datagen/yago_like.h"

namespace wireframe {
namespace {

void ExpectSameDatabase(const Database& a, const Database& b) {
  ASSERT_EQ(a.store().NumTriples(), b.store().NumTriples());
  ASSERT_EQ(a.store().NumPredicates(), b.store().NumPredicates());
  ASSERT_EQ(a.nodes().Size(), b.nodes().Size());
  ASSERT_EQ(a.labels().Size(), b.labels().Size());
  for (uint32_t id = 0; id < a.nodes().Size(); ++id) {
    EXPECT_EQ(a.nodes().Term(id), b.nodes().Term(id));
  }
  for (LabelId p = 0; p < a.store().NumPredicates(); ++p) {
    EXPECT_EQ(a.labels().Term(p), b.labels().Term(p));
    EXPECT_EQ(a.store().EdgeList(p), b.store().EdgeList(p));
  }
}

TEST(SerializerTest, RoundTripSmall) {
  DatabaseBuilder b;
  b.Add("alice", "knows", "bob");
  b.Add("bob", "knows", "carol");
  b.Add("carol", "likes", "alice");
  Database db = std::move(b).Build();

  std::stringstream buffer;
  ASSERT_TRUE(Serializer::Save(db, buffer).ok());
  auto loaded = Serializer::Load(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameDatabase(db, *loaded);
}

TEST(SerializerTest, RoundTripRandomGraph) {
  Database db = MakeRandomGraph(200, 8, 5000, 11);
  std::stringstream buffer;
  ASSERT_TRUE(Serializer::Save(db, buffer).ok());
  auto loaded = Serializer::Load(buffer);
  ASSERT_TRUE(loaded.ok());
  ExpectSameDatabase(db, *loaded);
}

TEST(SerializerTest, RoundTripYagoLike) {
  YagoLikeConfig config;
  config.scale = 0.02;
  Database db = MakeYagoLike(config);
  std::stringstream buffer;
  ASSERT_TRUE(Serializer::Save(db, buffer).ok());
  auto loaded = Serializer::Load(buffer);
  ASSERT_TRUE(loaded.ok());
  ExpectSameDatabase(db, *loaded);
}

TEST(SerializerTest, RejectsBadMagic) {
  std::stringstream buffer("not a snapshot at all");
  auto loaded = Serializer::Load(buffer);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsParseError());
}

TEST(SerializerTest, RejectsTruncated) {
  DatabaseBuilder b;
  b.Add("a", "p", "c");
  Database db = std::move(b).Build();
  std::stringstream buffer;
  ASSERT_TRUE(Serializer::Save(db, buffer).ok());
  std::string bytes = buffer.str();
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{5}}) {
    std::stringstream truncated(bytes.substr(0, cut));
    EXPECT_FALSE(Serializer::Load(truncated).ok()) << "cut at " << cut;
  }
}

TEST(SerializerTest, RejectsCorruptedTriple) {
  DatabaseBuilder b;
  b.Add("a", "p", "c");
  b.Add("b", "p", "c");
  Database db = std::move(b).Build();
  std::stringstream buffer;
  ASSERT_TRUE(Serializer::Save(db, buffer).ok());
  std::string bytes = buffer.str();
  bytes[bytes.size() - 12] ^= 0x01;  // flip a bit inside the last triple
  std::stringstream corrupted(bytes);
  auto loaded = Serializer::Load(corrupted);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsParseError());
}

TEST(SerializerTest, FileRoundTrip) {
  Database db = MakeRandomGraph(50, 3, 400, 3);
  const std::string path = "/tmp/wf_serializer_test.wfdb";
  ASSERT_TRUE(Serializer::SaveFile(db, path).ok());
  auto loaded = Serializer::LoadFile(path);
  ASSERT_TRUE(loaded.ok());
  ExpectSameDatabase(db, *loaded);
  std::remove(path.c_str());
}

TEST(SerializerTest, MissingFileIsIOError) {
  auto loaded = Serializer::LoadFile("/nonexistent/db.wfdb");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace wireframe
