#include "storage/triple_store.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace wireframe {
namespace {

TripleStore MakeSmallStore() {
  // Label 0: 0->1, 0->2, 3->1 ; label 1: 1->2 ; label 2 unused (gap).
  TripleStoreBuilder b;
  b.Add(0, 0, 1);
  b.Add(0, 0, 2);
  b.Add(3, 0, 1);
  b.Add(1, 1, 2);
  b.Add(Triple{2, 3, 0});
  return std::move(b).Build();
}

TEST(TripleStoreTest, CountsAndSizes) {
  TripleStore s = MakeSmallStore();
  EXPECT_EQ(s.NumTriples(), 5u);
  EXPECT_EQ(s.NumPredicates(), 4u);
  EXPECT_EQ(s.NumNodes(), 4u);
  EXPECT_EQ(s.PredicateCardinality(0), 3u);
  EXPECT_EQ(s.PredicateCardinality(1), 1u);
  EXPECT_EQ(s.PredicateCardinality(2), 0u);
  EXPECT_EQ(s.PredicateCardinality(3), 1u);
}

TEST(TripleStoreTest, Deduplicates) {
  TripleStoreBuilder b;
  b.Add(1, 0, 2);
  b.Add(1, 0, 2);
  b.Add(1, 0, 2);
  TripleStore s = std::move(b).Build();
  EXPECT_EQ(s.NumTriples(), 1u);
}

TEST(TripleStoreTest, OutNeighborsSorted) {
  TripleStoreBuilder b;
  b.Add(5, 0, 9);
  b.Add(5, 0, 3);
  b.Add(5, 0, 7);
  TripleStore s = std::move(b).Build();
  auto out = s.OutNeighbors(0, 5);
  std::vector<NodeId> got(out.begin(), out.end());
  EXPECT_EQ(got, (std::vector<NodeId>{3, 7, 9}));
}

TEST(TripleStoreTest, InNeighbors) {
  TripleStore s = MakeSmallStore();
  auto in = s.InNeighbors(0, 1);
  std::vector<NodeId> got(in.begin(), in.end());
  EXPECT_EQ(got, (std::vector<NodeId>{0, 3}));
  EXPECT_TRUE(s.InNeighbors(0, 0).empty());
}

TEST(TripleStoreTest, MissingLookupsAreEmpty) {
  TripleStore s = MakeSmallStore();
  EXPECT_TRUE(s.OutNeighbors(0, 2).empty());   // 2 is never a subject of 0
  EXPECT_TRUE(s.OutNeighbors(2, 0).empty());   // label 2 has no triples
  EXPECT_TRUE(s.InNeighbors(1, 1).empty());
}

TEST(TripleStoreTest, HasTriple) {
  TripleStore s = MakeSmallStore();
  EXPECT_TRUE(s.HasTriple(0, 0, 1));
  EXPECT_TRUE(s.HasTriple(2, 3, 0));
  EXPECT_FALSE(s.HasTriple(0, 0, 3));
  EXPECT_FALSE(s.HasTriple(0, 1, 1));
  EXPECT_FALSE(s.HasTriple(0, 99, 1));  // out-of-range label
}

TEST(TripleStoreTest, DistinctSubjectsAndObjects) {
  TripleStore s = MakeSmallStore();
  auto subs = s.DistinctSubjects(0);
  EXPECT_EQ(std::vector<NodeId>(subs.begin(), subs.end()),
            (std::vector<NodeId>{0, 3}));
  auto objs = s.DistinctObjects(0);
  EXPECT_EQ(std::vector<NodeId>(objs.begin(), objs.end()),
            (std::vector<NodeId>{1, 2}));
}

TEST(TripleStoreTest, ForEachEdgeVisitsAllGroupedBySubject) {
  TripleStore s = MakeSmallStore();
  std::vector<std::pair<NodeId, NodeId>> edges;
  s.ForEachEdge(0, [&](NodeId a, NodeId b) { edges.emplace_back(a, b); });
  EXPECT_EQ(edges, (std::vector<std::pair<NodeId, NodeId>>{
                       {0, 1}, {0, 2}, {3, 1}}));
}

TEST(TripleStoreTest, EdgeListMatchesForEachEdge) {
  TripleStore s = MakeSmallStore();
  EXPECT_EQ(s.EdgeList(0).size(), 3u);
  EXPECT_EQ(s.EdgeList(2).size(), 0u);
}

TEST(TripleStoreTest, EmptyStore) {
  TripleStoreBuilder b;
  TripleStore s = std::move(b).Build();
  EXPECT_EQ(s.NumTriples(), 0u);
  EXPECT_EQ(s.NumPredicates(), 0u);
  EXPECT_EQ(s.NumNodes(), 0u);
}

TEST(TripleStoreTest, LargeRandomConsistency) {
  // Forward and backward indexes must agree on every edge.
  TripleStoreBuilder b;
  uint64_t x = 88172645463325252ull;
  auto next = [&x]() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  for (int i = 0; i < 20000; ++i) {
    b.Add(static_cast<NodeId>(next() % 500), static_cast<LabelId>(next() % 7),
          static_cast<NodeId>(next() % 500));
  }
  TripleStore s = std::move(b).Build();
  uint64_t forward_edges = 0, backward_edges = 0;
  for (LabelId p = 0; p < s.NumPredicates(); ++p) {
    s.ForEachEdge(p, [&](NodeId a, NodeId o) {
      ++forward_edges;
      auto in = s.InNeighbors(p, o);
      EXPECT_TRUE(std::binary_search(in.begin(), in.end(), a));
    });
    for (NodeId o : s.DistinctObjects(p)) {
      backward_edges += s.InNeighbors(p, o).size();
    }
  }
  EXPECT_EQ(forward_edges, s.NumTriples());
  EXPECT_EQ(backward_edges, s.NumTriples());
}

}  // namespace
}  // namespace wireframe
