#include "exec/aggregate_executor.h"

#include <string>

#include <gtest/gtest.h>

#include "core/wireframe.h"
#include "datagen/synthetic.h"
#include "query/parser.h"
#include "testutil/fixtures.h"

namespace wireframe {
namespace {

/// Runs `sparql` through the Wireframe engine and returns the detail
/// (aggregate queries land in detail.aggregate via ExecutePhase2).
WireframeRunDetail RunAggregate(const Database& db, const Catalog& cat,
                       const std::string& sparql, uint32_t threads = 1,
                       WireframeOptions wf_options = {}) {
  auto q = SparqlParser::ParseAndBind(sparql, db);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  WireframeEngine engine(wf_options);
  EngineOptions options;
  options.threads = threads;
  CollectingAggregateSink sink;
  auto detail = engine.RunDetailed(db, cat, *q, options, &sink);
  EXPECT_TRUE(detail.ok()) << detail.status().ToString();
  return std::move(detail).value();
}

/// Enumerate-then-count reference: runs the plain SELECT twin of the
/// aggregate query and folds its rows with the aggregate's own spec.
AggregateResult EnumerateReference(const Database& db, const Catalog& cat,
                                   const std::string& aggregate_sparql,
                                   const std::string& plain_sparql) {
  auto agg_q = SparqlParser::ParseAndBind(aggregate_sparql, db);
  auto plain_q = SparqlParser::ParseAndBind(plain_sparql, db);
  EXPECT_TRUE(agg_q.ok() && plain_q.ok());
  EnumeratingAggregateSink fold(agg_q->aggregate());
  WireframeEngine engine;
  EngineOptions options;
  auto detail = engine.RunDetailed(db, cat, *plain_q, options, &fold);
  EXPECT_TRUE(detail.ok()) << detail.status().ToString();
  return fold.TakeResult();
}

using AggregateFig1Test = testutil::Fig1Fixture;
using AggregateFig4Test = testutil::Fig4Fixture;

TEST_F(AggregateFig1Test, CountStarIsFactorizedAndExact) {
  WireframeRunDetail detail = RunAggregate(
      db_, cat_, "select (count(*) as ?c) where "
                 "{ ?w A ?x . ?x B ?y . ?y C ?z . }");
  ASSERT_TRUE(detail.has_aggregate);
  EXPECT_TRUE(detail.aggregate.factorized);
  EXPECT_EQ(detail.aggregate.value, AggregateValue::FromU64(12));
  EXPECT_EQ(detail.stats.output_tuples, 1u);
  EXPECT_GE(detail.stats.aggregate_seconds, 0.0);
}

TEST_F(AggregateFig1Test, GroupByMatchesEnumeration) {
  const std::string agg =
      "select ?w (count(*) as ?c) where "
      "{ ?w A ?x . ?x B ?y . ?y C ?z . } group by ?w";
  const std::string plain =
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }";
  WireframeRunDetail detail = RunAggregate(db_, cat_, agg);
  ASSERT_TRUE(detail.has_aggregate);
  EXPECT_TRUE(detail.aggregate.factorized);
  AggregateResult reference = EnumerateReference(db_, cat_, agg, plain);
  EXPECT_EQ(detail.aggregate.groups, reference.groups);
  EXPECT_EQ(detail.aggregate.value, reference.value);
  EXPECT_EQ(detail.stats.output_tuples, reference.groups.size());
}

TEST_F(AggregateFig1Test, CountDistinctMatchesEnumeration) {
  const std::string agg =
      "select (count(distinct ?y) as ?c) where "
      "{ ?w A ?x . ?x B ?y . ?y C ?z . }";
  const std::string plain =
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }";
  WireframeRunDetail detail = RunAggregate(db_, cat_, agg);
  ASSERT_TRUE(detail.has_aggregate);
  EXPECT_TRUE(detail.aggregate.factorized);
  AggregateResult reference = EnumerateReference(db_, cat_, agg, plain);
  EXPECT_EQ(detail.aggregate.value, reference.value);
}

TEST_F(AggregateFig1Test, AskIsTrueWithoutEnumeration) {
  WireframeRunDetail detail = RunAggregate(
      db_, cat_, "ask { ?w A ?x . ?x B ?y . ?y C ?z . }");
  ASSERT_TRUE(detail.has_aggregate);
  EXPECT_TRUE(detail.aggregate.factorized);
  EXPECT_TRUE(detail.aggregate.ask);
  EXPECT_EQ(detail.aggregate.value, AggregateValue::FromU64(1));
}

TEST(AggregateAskTest, EmptyResultAsksFalse) {
  DatabaseBuilder b;
  b.Add("a", "P", "b");
  b.Add("c", "Q", "d");  // no P-then-Q chain exists
  Database db = std::move(b).Build();
  Catalog cat = Catalog::Build(db.store());
  WireframeRunDetail detail =
      RunAggregate(db, cat, "ask { ?x P ?y . ?y Q ?z . }");
  ASSERT_TRUE(detail.has_aggregate);
  EXPECT_FALSE(detail.aggregate.ask);
  EXPECT_TRUE(detail.aggregate.value.IsZero());
}

TEST_F(AggregateFig4Test, CyclicCountUsesTheChordDp) {
  WireframeRunDetail detail = RunAggregate(
      db_, cat_, "select (count(*) as ?c) where "
                 "{ ?x A ?e . ?x B ?z . ?e C ?y . ?y D ?z . }");
  ASSERT_TRUE(detail.has_aggregate);
  EXPECT_TRUE(detail.aggregate.factorized) <<
      detail.aggregate.fallback_reason;
  EXPECT_EQ(detail.aggregate.value, AggregateValue::FromU64(2));
}

TEST(AggregateRandomTest, SquareMatchesEnumeration) {
  Database db = MakeRandomGraph(40, 3, 1500, 42);
  Catalog cat = Catalog::Build(db.store());
  const std::string agg =
      "select (count(*) as ?c) where "
      "{ ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?a . }";
  const std::string plain =
      "select * where { ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?a . }";
  WireframeRunDetail detail = RunAggregate(db, cat, agg);
  ASSERT_TRUE(detail.has_aggregate);
  EXPECT_TRUE(detail.aggregate.factorized) <<
      detail.aggregate.fallback_reason;
  AggregateResult reference = EnumerateReference(db, cat, agg, plain);
  EXPECT_EQ(detail.aggregate.value, reference.value);
}

TEST(AggregateRandomTest, SquareGroupByChordEndpointMatchesEnumeration) {
  Database db = MakeRandomGraph(40, 3, 1500, 43);
  Catalog cat = Catalog::Build(db.store());
  const std::string agg =
      "select ?a (count(*) as ?c) where "
      "{ ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?a . } group by ?a";
  const std::string plain =
      "select * where { ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?a . }";
  WireframeRunDetail detail = RunAggregate(db, cat, agg);
  ASSERT_TRUE(detail.has_aggregate);
  AggregateResult reference = EnumerateReference(db, cat, agg, plain);
  EXPECT_EQ(detail.aggregate.groups, reference.groups);
  EXPECT_EQ(detail.aggregate.value, reference.value);
}

TEST(AggregateRandomTest, SquareWithPendantTailMatchesEnumeration) {
  Database db = MakeRandomGraph(40, 3, 1500, 44);
  Catalog cat = Catalog::Build(db.store());
  const std::string agg =
      "select (count(*) as ?c) where "
      "{ ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?a . ?b p2 ?t . }";
  const std::string plain =
      "select * where "
      "{ ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?a . ?b p2 ?t . }";
  WireframeRunDetail detail = RunAggregate(db, cat, agg);
  ASSERT_TRUE(detail.has_aggregate);
  AggregateResult reference = EnumerateReference(db, cat, agg, plain);
  EXPECT_EQ(detail.aggregate.value, reference.value);
}

TEST(AggregateRandomTest, FiveCycleFallsBackToEnumeration) {
  Database db = MakeRandomGraph(30, 3, 800, 45);
  Catalog cat = Catalog::Build(db.store());
  const std::string agg =
      "select (count(*) as ?c) where "
      "{ ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?e . ?e p1 ?a . }";
  const std::string plain =
      "select * where "
      "{ ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?e . ?e p1 ?a . }";
  WireframeRunDetail detail = RunAggregate(db, cat, agg);
  ASSERT_TRUE(detail.has_aggregate);
  EXPECT_FALSE(detail.aggregate.factorized);
  EXPECT_FALSE(detail.aggregate.fallback_reason.empty());
  AggregateResult reference = EnumerateReference(db, cat, agg, plain);
  EXPECT_EQ(detail.aggregate.value, reference.value);
}

TEST(AggregateRandomTest, ThreadCountDoesNotChangeTheAnswer) {
  Database db = MakeRandomGraph(40, 3, 1500, 46);
  Catalog cat = Catalog::Build(db.store());
  const std::string agg =
      "select ?a (count(*) as ?c) where "
      "{ ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?a . } group by ?a";
  WireframeRunDetail serial = RunAggregate(db, cat, agg, /*threads=*/1);
  WireframeRunDetail parallel = RunAggregate(db, cat, agg, /*threads=*/4);
  EXPECT_EQ(serial.aggregate.value, parallel.aggregate.value);
  EXPECT_EQ(serial.aggregate.groups, parallel.aggregate.groups);
}

/// Layered complete-bipartite chain: `layers` layers of `width` nodes,
/// every consecutive pair fully connected under a per-layer label, so a
/// (layers-1)-edge chain query has exactly width^layers embeddings.
Database MakeLayeredBlowup(uint32_t layers, uint32_t width) {
  DatabaseBuilder b;
  for (uint32_t l = 0; l + 1 < layers; ++l) {
    const std::string label = "p" + std::to_string(l);
    for (uint32_t i = 0; i < width; ++i) {
      const std::string src =
          "n" + std::to_string(l) + "_" + std::to_string(i);
      for (uint32_t j = 0; j < width; ++j) {
        b.Add(src, label,
              "n" + std::to_string(l + 1) + "_" + std::to_string(j));
      }
    }
  }
  return std::move(b).Build();
}

std::string LayeredCountQuery(uint32_t layers) {
  std::string q = "select (count(*) as ?c) where {";
  for (uint32_t l = 0; l + 1 < layers; ++l) {
    q += " ?v" + std::to_string(l) + " p" + std::to_string(l) + " ?v" +
         std::to_string(l + 1) + " .";
  }
  return q + " }";
}

TEST(AggregateOverflowTest, PromotionPast64BitsIsExact) {
  // 22 layers of 10 = 10^22 embeddings, past 2^64 ~ 1.8e19: the u64
  // pass overflows loudly and the 128-bit rerun carries the exact value.
  Database db = MakeLayeredBlowup(22, 10);
  Catalog cat = Catalog::Build(db.store());
  WireframeRunDetail detail = RunAggregate(db, cat, LayeredCountQuery(22));
  ASSERT_TRUE(detail.has_aggregate);
  EXPECT_TRUE(detail.aggregate.factorized);
  EXPECT_TRUE(detail.aggregate.value.ExceedsU64());
  EXPECT_FALSE(detail.aggregate.value.saturated);
  EXPECT_EQ(detail.aggregate.value.ToString(),
            "1" + std::string(22, '0'));
}

TEST(AggregateOverflowTest, SaturationPast128BitsIsFlagged) {
  // 46 layers of 10 = 10^46, past 2^128 ~ 3.4e38: even the 128-bit
  // rerun saturates; the result says so instead of lying.
  Database db = MakeLayeredBlowup(46, 10);
  Catalog cat = Catalog::Build(db.store());
  WireframeRunDetail detail = RunAggregate(db, cat, LayeredCountQuery(46));
  ASSERT_TRUE(detail.has_aggregate);
  EXPECT_TRUE(detail.aggregate.value.saturated);
  EXPECT_EQ(detail.aggregate.value.ToString().substr(0, 2), ">=");
  // Saturation never turns a nonzero count into zero, so ASK over the
  // same shape stays exact.
  WireframeRunDetail ask = RunAggregate(
      db, cat, std::string("ask where {") +
                   LayeredCountQuery(46).substr(
                       std::string("select (count(*) as ?c) where {")
                           .size()));
  EXPECT_TRUE(ask.aggregate.ask);
}

TEST(AggregateValueTest, ToStringRendersSmallAndLarge) {
  EXPECT_EQ(AggregateValue::FromU64(0).ToString(), "0");
  EXPECT_EQ(AggregateValue::FromU64(12345).ToString(), "12345");
  AggregateValue big;
  big.lo = 0;
  big.hi = 1;  // 2^64
  EXPECT_EQ(big.ToString(), "18446744073709551616");
}

}  // namespace
}  // namespace wireframe
