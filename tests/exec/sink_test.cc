#include "exec/sink.h"

#include <atomic>
#include <mutex>

#include <gtest/gtest.h>

namespace wireframe {
namespace {

TEST(SinkTest, CountingSinkCounts) {
  CountingSink sink;
  std::vector<NodeId> row = {1, 2, 3};
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(sink.Emit(row));
  EXPECT_EQ(sink.count(), 5u);
}

TEST(SinkTest, LimitSinkStopsAtLimit) {
  LimitSink sink(3);
  std::vector<NodeId> row = {1};
  EXPECT_TRUE(sink.Emit(row));
  EXPECT_TRUE(sink.Emit(row));
  EXPECT_FALSE(sink.Emit(row));  // third emit reaches the limit
  EXPECT_EQ(sink.count(), 3u);
}

TEST(SinkTest, LimitOneProbesExistence) {
  LimitSink sink(1);
  std::vector<NodeId> row = {9};
  EXPECT_FALSE(sink.Emit(row));
  EXPECT_EQ(sink.count(), 1u);
}

TEST(SinkTest, CollectingSinkStoresRows) {
  CollectingSink sink;
  sink.Emit({1, 2});
  sink.Emit({3, 4});
  ASSERT_EQ(sink.rows().size(), 2u);
  EXPECT_EQ(sink.rows()[1], (std::vector<NodeId>{3, 4}));
}

TEST(SinkTest, DistinctProjectingSinkDedups) {
  CollectingSink inner;
  DistinctProjectingSink sink({0, 2}, &inner);
  sink.Emit({1, 100, 2});
  sink.Emit({1, 200, 2});  // same projection (1, 2)
  sink.Emit({1, 100, 3});
  EXPECT_EQ(inner.count(), 2u);
  EXPECT_EQ(inner.rows()[0], (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(inner.rows()[1], (std::vector<NodeId>{1, 3}));
}

TEST(SinkTest, DistinctProjectingSinkOrderSensitive) {
  CollectingSink inner;
  DistinctProjectingSink sink({0, 1}, &inner);
  sink.Emit({1, 2});
  sink.Emit({2, 1});  // different tuple
  EXPECT_EQ(inner.count(), 2u);
}

TEST(SinkShardTest, BuffersUntilBatchThenDrainsInOrder) {
  CollectingSink inner;
  std::mutex mu;
  std::atomic<bool> stop{false};
  SinkShard shard(&inner, &mu, &stop, /*batch=*/3);
  EXPECT_TRUE(shard.Emit({1, 2}));
  EXPECT_TRUE(shard.Emit({3, 4}));
  EXPECT_EQ(inner.count(), 0u) << "nothing drains before the batch fills";
  EXPECT_TRUE(shard.Emit({5, 6}));
  EXPECT_EQ(inner.count(), 3u);
  EXPECT_EQ(inner.rows()[0], (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(inner.rows()[2], (std::vector<NodeId>{5, 6}));
  EXPECT_EQ(shard.count(), 3u);
}

TEST(SinkShardTest, TailFlushDeliversPartialBatch) {
  CollectingSink inner;
  std::mutex mu;
  std::atomic<bool> stop{false};
  SinkShard shard(&inner, &mu, &stop, /*batch=*/100);
  shard.Emit({7, 8, 9});
  shard.Emit({10, 11, 12});
  EXPECT_EQ(inner.count(), 0u);
  EXPECT_TRUE(shard.Flush());
  EXPECT_EQ(inner.count(), 2u);
  EXPECT_TRUE(shard.Flush()) << "empty re-flush is a no-op";
  EXPECT_EQ(inner.count(), 2u);
}

TEST(SinkShardTest, InnerDeclineRaisesSharedStopAndDiscardsRest) {
  LimitSink inner(2);
  std::mutex mu;
  std::atomic<bool> stop{false};
  SinkShard a(&inner, &mu, &stop, /*batch=*/4);
  for (NodeId i = 0; i < 4; ++i) a.Emit({i});
  EXPECT_TRUE(stop.load()) << "limit hit must raise the shared stop";
  EXPECT_EQ(inner.count(), 2u) << "no rows beyond the limit reach inner";

  // A sibling shard sees the stop immediately and buffers nothing more.
  SinkShard b(&inner, &mu, &stop, /*batch=*/4);
  EXPECT_FALSE(b.Emit({9}));
  b.Flush();
  EXPECT_EQ(inner.count(), 2u);
}

}  // namespace
}  // namespace wireframe
