#include "exec/sink.h"

#include <gtest/gtest.h>

namespace wireframe {
namespace {

TEST(SinkTest, CountingSinkCounts) {
  CountingSink sink;
  std::vector<NodeId> row = {1, 2, 3};
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(sink.Emit(row));
  EXPECT_EQ(sink.count(), 5u);
}

TEST(SinkTest, LimitSinkStopsAtLimit) {
  LimitSink sink(3);
  std::vector<NodeId> row = {1};
  EXPECT_TRUE(sink.Emit(row));
  EXPECT_TRUE(sink.Emit(row));
  EXPECT_FALSE(sink.Emit(row));  // third emit reaches the limit
  EXPECT_EQ(sink.count(), 3u);
}

TEST(SinkTest, LimitOneProbesExistence) {
  LimitSink sink(1);
  std::vector<NodeId> row = {9};
  EXPECT_FALSE(sink.Emit(row));
  EXPECT_EQ(sink.count(), 1u);
}

TEST(SinkTest, CollectingSinkStoresRows) {
  CollectingSink sink;
  sink.Emit({1, 2});
  sink.Emit({3, 4});
  ASSERT_EQ(sink.rows().size(), 2u);
  EXPECT_EQ(sink.rows()[1], (std::vector<NodeId>{3, 4}));
}

TEST(SinkTest, DistinctProjectingSinkDedups) {
  CollectingSink inner;
  DistinctProjectingSink sink({0, 2}, &inner);
  sink.Emit({1, 100, 2});
  sink.Emit({1, 200, 2});  // same projection (1, 2)
  sink.Emit({1, 100, 3});
  EXPECT_EQ(inner.count(), 2u);
  EXPECT_EQ(inner.rows()[0], (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(inner.rows()[1], (std::vector<NodeId>{1, 3}));
}

TEST(SinkTest, DistinctProjectingSinkOrderSensitive) {
  CollectingSink inner;
  DistinctProjectingSink sink({0, 1}, &inner);
  sink.Emit({1, 2});
  sink.Emit({2, 1});  // different tuple
  EXPECT_EQ(inner.count(), 2u);
}

}  // namespace
}  // namespace wireframe
