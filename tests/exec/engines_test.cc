#include <gtest/gtest.h>

#include "datagen/figures.h"
#include "exec/baselines.h"
#include "exec/engine.h"

namespace wireframe {
namespace {

TEST(EngineFactoryTest, MakesEveryPaperEngine) {
  for (const std::string& name : AllEngineNames()) {
    auto engine = MakeEngine(name);
    ASSERT_NE(engine, nullptr) << name;
    EXPECT_EQ(engine->name(), name);
  }
  EXPECT_EQ(MakeEngine("nope"), nullptr);
}

TEST(EngineFactoryTest, ColumnOrderMatchesPaper) {
  EXPECT_EQ(AllEngineNames(),
            (std::vector<std::string>{"PG", "WF", "VT", "MD", "NJ"}));
}

class AllEnginesFig1Test : public ::testing::TestWithParam<std::string> {
 protected:
  AllEnginesFig1Test()
      : db_(MakeFig1Graph()), cat_(Catalog::Build(db_.store())) {}
  Database db_;
  Catalog cat_;
};

TEST_P(AllEnginesFig1Test, TwelveEmbeddingsOnChain) {
  auto q = MakeFig1Query(db_);
  ASSERT_TRUE(q.ok());
  auto engine = MakeEngine(GetParam());
  CountingSink sink;
  auto stats = engine->Run(db_, cat_, *q, EngineOptions{}, &sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->output_tuples, kFig1Embeddings);
  EXPECT_EQ(sink.count(), kFig1Embeddings);
  EXPECT_GT(stats->edge_walks, 0u);
}

TEST_P(AllEnginesFig1Test, TwoEmbeddingsOnDiamond) {
  Database db = MakeFig4Graph();
  Catalog cat = Catalog::Build(db.store());
  auto q = MakeFig4Query(db);
  ASSERT_TRUE(q.ok());
  auto engine = MakeEngine(GetParam());
  CountingSink sink;
  auto stats = engine->Run(db, cat, *q, EngineOptions{}, &sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->output_tuples, kFig4Embeddings);
}

TEST_P(AllEnginesFig1Test, ExpiredDeadlineTimesOut) {
  auto q = MakeFig1Query(db_);
  ASSERT_TRUE(q.ok());
  auto engine = MakeEngine(GetParam());
  CountingSink sink;
  EngineOptions options;
  options.deadline = Deadline::AlreadyExpired();
  auto stats = engine->Run(db_, cat_, *q, options, &sink);
  // Tiny inputs may finish between deadline checks; both outcomes are
  // legal, but a failure must be TimedOut.
  if (!stats.ok()) {
    EXPECT_TRUE(stats.status().IsTimedOut());
  }
}

INSTANTIATE_TEST_SUITE_P(Engines, AllEnginesFig1Test,
                         ::testing::Values("PG", "WF", "VT", "MD", "NJ"),
                         [](const auto& info) { return info.param; });

TEST(BaselineRegimesTest, MaterializingEnginesReportPeakIntermediate) {
  Database db = MakeFig1Graph();
  Catalog cat = Catalog::Build(db.store());
  auto q = MakeFig1Query(db);
  ASSERT_TRUE(q.ok());
  for (const char* name : {"PG", "MD"}) {
    auto engine = MakeEngine(name);
    CountingSink sink;
    auto stats = engine->Run(db, cat, *q, EngineOptions{}, &sink);
    ASSERT_TRUE(stats.ok());
    EXPECT_GT(stats->peak_intermediate, 0u) << name;
  }
}

TEST(BaselineRegimesTest, PipelinedEnginesDoNotMaterialize) {
  Database db = MakeFig1Graph();
  Catalog cat = Catalog::Build(db.store());
  auto q = MakeFig1Query(db);
  ASSERT_TRUE(q.ok());
  for (const char* name : {"VT", "NJ"}) {
    auto engine = MakeEngine(name);
    CountingSink sink;
    auto stats = engine->Run(db, cat, *q, EngineOptions{}, &sink);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->peak_intermediate, 0u) << name;
  }
}

TEST(BaselineRegimesTest, OnlyWireframeReportsAgPairs) {
  Database db = MakeFig1Graph();
  Catalog cat = Catalog::Build(db.store());
  auto q = MakeFig1Query(db);
  ASSERT_TRUE(q.ok());
  for (const std::string& name : AllEngineNames()) {
    auto engine = MakeEngine(name);
    CountingSink sink;
    auto stats = engine->Run(db, cat, *q, EngineOptions{}, &sink);
    ASSERT_TRUE(stats.ok());
    if (name == "WF") {
      EXPECT_EQ(stats->ag_pairs, kFig1IdealAgEdges);
    } else {
      EXPECT_EQ(stats->ag_pairs, 0u) << name;
    }
  }
}

}  // namespace
}  // namespace wireframe
