#include "exec/join_common.h"

#include <set>

#include <gtest/gtest.h>

#include "datagen/figures.h"
#include "query/parser.h"

namespace wireframe {
namespace {

class JoinCommonTest : public ::testing::Test {
 protected:
  JoinCommonTest()
      : db_(MakeFig1Graph()), cat_(Catalog::Build(db_.store())) {}

  QueryGraph Chain() {
    auto q = MakeFig1Query(db_);
    EXPECT_TRUE(q.ok());
    return std::move(q).value();
  }

  Database db_;
  Catalog cat_;
};

TEST_F(JoinCommonTest, OrderBySmallestLabelIsConnectedPermutation) {
  QueryGraph q = Chain();
  auto order = OrderBySmallestLabel(q, cat_);
  EXPECT_EQ(std::set<uint32_t>(order.begin(), order.end()).size(), 3u);
  // B (2 edges) is the smallest label, so it leads.
  EXPECT_EQ(q.Edge(order[0]).label, *db_.LabelOf("B"));
}

TEST_F(JoinCommonTest, OrderByEstimatedGrowthConnected) {
  QueryGraph q = Chain();
  CardinalityEstimator est(cat_);
  auto order = OrderByEstimatedGrowth(q, est);
  EXPECT_EQ(order.size(), 3u);
  std::set<VarId> bound;
  for (size_t i = 0; i < order.size(); ++i) {
    const QueryEdge& e = q.Edge(order[i]);
    if (i > 0) {
      EXPECT_TRUE(bound.count(e.src) || bound.count(e.dst));
    }
    bound.insert(e.src);
    bound.insert(e.dst);
  }
}

TEST_F(JoinCommonTest, OrderAsWrittenKeepsPositionWhenConnected) {
  QueryGraph q = Chain();
  auto order = OrderAsWrittenConnected(q);
  EXPECT_EQ(order, (std::vector<uint32_t>{0, 1, 2}));
}

TEST_F(JoinCommonTest, OrderAsWrittenRepairsConnectivity) {
  // ?a A ?b (edge 0) and ?c C ?d (edge 1) disconnected until edge 2
  // bridges; written order 0,1,2 is invalid, expect 0,2,1.
  DatabaseBuilder builder;
  builder.Add("x", "A", "y");
  builder.Add("y", "B", "z");
  builder.Add("z", "C", "w");
  Database db = std::move(builder).Build();
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?a A ?b . ?c C ?d . ?b B ?c . }", db);
  ASSERT_TRUE(q.ok());
  auto order = OrderAsWrittenConnected(*q);
  EXPECT_EQ(order, (std::vector<uint32_t>{0, 2, 1}));
}

TEST_F(JoinCommonTest, PipelinedFindsAllEmbeddings) {
  QueryGraph q = Chain();
  CountingSink sink;
  auto stats = RunPipelined(db_, q, {0, 1, 2}, Deadline{}, nullptr, &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->output_tuples, kFig1Embeddings);
  EXPECT_GT(stats->edge_walks, 0u);
}

TEST_F(JoinCommonTest, PipelinedBackwardOrder) {
  QueryGraph q = Chain();
  CountingSink sink;
  auto stats = RunPipelined(db_, q, {2, 1, 0}, Deadline{}, nullptr, &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->output_tuples, kFig1Embeddings);
}

TEST_F(JoinCommonTest, MaterializingFindsAllEmbeddings) {
  QueryGraph q = Chain();
  CountingSink sink;
  auto stats =
      RunMaterializing(db_, q, {0, 1, 2}, Deadline{}, nullptr,
                       1 << 20, &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->output_tuples, kFig1Embeddings);
  EXPECT_GE(stats->peak_intermediate, kFig1Embeddings);
}

TEST_F(JoinCommonTest, MaterializingRespectsMemoryBudget) {
  QueryGraph q = Chain();
  CountingSink sink;
  auto stats =
      RunMaterializing(db_, q, {0, 1, 2}, Deadline{}, nullptr, 8, &sink);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kOutOfRange);
}

TEST_F(JoinCommonTest, PipelinedHonorsDeadline) {
  QueryGraph q = Chain();
  CountingSink sink;
  // An expired deadline is only noticed on the check stride; build a
  // query whose enumeration would exceed it.
  Database big = MakeFig1Graph();
  auto stats = RunPipelined(big, q, {0, 1, 2}, Deadline::AfterSeconds(1000),
                            nullptr, &sink);
  EXPECT_TRUE(stats.ok());
}

TEST_F(JoinCommonTest, MaterializingHonorsExpiredDeadline) {
  QueryGraph q = Chain();
  CountingSink sink;
  auto stats = RunMaterializing(db_, q, {0, 1, 2},
                                Deadline::AlreadyExpired(), nullptr,
                                1 << 20, &sink);
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsTimedOut());
}

}  // namespace
}  // namespace wireframe
