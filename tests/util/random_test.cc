#include "util/random.h"

#include <map>

#include <gtest/gtest.h>

namespace wireframe {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng(11);
  std::map<uint64_t, int> hist;
  for (int i = 0; i < 5000; ++i) ++hist[rng.Uniform(8)];
  EXPECT_EQ(hist.size(), 8u);
  for (const auto& [value, count] : hist) {
    EXPECT_GT(count, 5000 / 8 / 3) << "residue " << value << " underweight";
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(ZipfTest, UniformWhenSkewZero) {
  Rng rng(3);
  ZipfSampler zipf(10, 0.0);
  std::map<uint64_t, int> hist;
  for (int i = 0; i < 20000; ++i) ++hist[zipf.Sample(rng)];
  for (const auto& [v, c] : hist) {
    EXPECT_NEAR(c / 20000.0, 0.1, 0.02) << "value " << v;
  }
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  Rng rng(3);
  ZipfSampler zipf(1000, 1.0);
  int top = 0;
  for (int i = 0; i < 10000; ++i) {
    if (zipf.Sample(rng) < 10) ++top;
  }
  // Under Zipf(1.0, 1000) the top-10 mass is ~39%; uniform would be 1%.
  EXPECT_GT(top, 2500);
}

TEST(ZipfTest, AllSamplesInRange) {
  Rng rng(17);
  ZipfSampler zipf(5, 1.2);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 5u);
}

TEST(ZipfTest, SingletonUniverse) {
  Rng rng(1);
  ZipfSampler zipf(1, 1.0);
  EXPECT_EQ(zipf.Sample(rng), 0u);
}

}  // namespace
}  // namespace wireframe
