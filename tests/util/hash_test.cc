#include "util/hash.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace wireframe {
namespace {

TEST(HashTest, PackUnpackRoundTrip) {
  for (NodeId a : {0u, 1u, 77u, 0xffffffffu}) {
    for (NodeId b : {0u, 3u, 0xfffffffeu}) {
      auto [x, y] = UnpackPair(PackPair(a, b));
      EXPECT_EQ(x, a);
      EXPECT_EQ(y, b);
    }
  }
}

TEST(HashTest, PackIsInjectiveOnSample) {
  std::unordered_set<uint64_t> seen;
  for (NodeId a = 0; a < 100; ++a) {
    for (NodeId b = 0; b < 100; ++b) {
      EXPECT_TRUE(seen.insert(PackPair(a, b)).second);
    }
  }
}

TEST(HashTest, PairOrderMatters) {
  EXPECT_NE(PackPair(1, 2), PackPair(2, 1));
}

TEST(HashTest, Mix64SpreadsDenseInputs) {
  // Dense sequential keys should not collide in the low bits after mixing.
  std::unordered_set<uint64_t> low_bits;
  for (uint64_t i = 0; i < 4096; ++i) {
    low_bits.insert(Mix64(i) & 0xfff);
  }
  // With perfect spread we'd see ~2641 of 4096 distinct values (balls in
  // bins); require a healthy fraction.
  EXPECT_GT(low_bits.size(), 2000u);
}

TEST(HashTest, Mix64IsDeterministic) {
  EXPECT_EQ(Mix64(12345), Mix64(12345));
  EXPECT_NE(Mix64(12345), Mix64(12346));
}

}  // namespace
}  // namespace wireframe
