#include "util/status.h"

#include <gtest/gtest.h>

namespace wireframe {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::TimedOut("x").code(), StatusCode::kTimedOut);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::TimedOut("budget").message(), "budget");
}

TEST(StatusTest, Predicates) {
  EXPECT_TRUE(Status::TimedOut("t").IsTimedOut());
  EXPECT_FALSE(Status::TimedOut("t").ok());
  EXPECT_TRUE(Status::NotFound("n").IsNotFound());
  EXPECT_TRUE(Status::ParseError("p").IsParseError());
  EXPECT_TRUE(Status::InvalidArgument("i").IsInvalidArgument());
  EXPECT_FALSE(Status::OK().IsTimedOut());
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status st = Status::ParseError("line 7: bad term");
  EXPECT_EQ(st.ToString(), "ParseError: line 7: bad term");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kTimedOut), "TimedOut");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    WF_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIOError);

  auto succeeds = [] { return Status::OK(); };
  auto wrapper2 = [&]() -> Status {
    WF_RETURN_NOT_OK(succeeds());
    return Status::AlreadyExists("after");
  };
  EXPECT_EQ(wrapper2().code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace wireframe
