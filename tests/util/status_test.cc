#include "util/status.h"

#include <gtest/gtest.h>

namespace wireframe {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::TimedOut("x").code(), StatusCode::kTimedOut);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::TimedOut("budget").message(), "budget");
}

TEST(StatusTest, Predicates) {
  EXPECT_TRUE(Status::TimedOut("t").IsTimedOut());
  EXPECT_FALSE(Status::TimedOut("t").ok());
  EXPECT_TRUE(Status::NotFound("n").IsNotFound());
  EXPECT_TRUE(Status::ParseError("p").IsParseError());
  EXPECT_TRUE(Status::InvalidArgument("i").IsInvalidArgument());
  EXPECT_FALSE(Status::OK().IsTimedOut());
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status st = Status::ParseError("line 7: bad term");
  EXPECT_EQ(st.ToString(), "ParseError: line 7: bad term");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kTimedOut), "TimedOut");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    WF_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIOError);

  auto succeeds = [] { return Status::OK(); };
  auto wrapper2 = [&]() -> Status {
    WF_RETURN_NOT_OK(succeeds());
    return Status::AlreadyExists("after");
  };
  EXPECT_EQ(wrapper2().code(), StatusCode::kAlreadyExists);
}

TEST(StatusTest, ReturnNotOkEvaluatesExpressionOnce) {
  int calls = 0;
  auto counted = [&] {
    ++calls;
    return Status::Internal("once");
  };
  auto wrapper = [&]() -> Status {
    WF_RETURN_NOT_OK(counted());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 1);
}

TEST(StatusTest, ReturnNotOkStopsAtFirstFailure) {
  bool reached = false;
  auto wrapper = [&]() -> Status {
    WF_RETURN_NOT_OK(Status::IOError("first"));
    reached = true;
    WF_RETURN_NOT_OK(Status::Internal("second"));
    return Status::OK();
  };
  Status st = wrapper();
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(st.message(), "first");
  EXPECT_FALSE(reached);
}

TEST(StatusTest, PredicatesAreFalseForOtherCodes) {
  Status io = Status::IOError("disk");
  EXPECT_FALSE(io.ok());
  EXPECT_FALSE(io.IsTimedOut());
  EXPECT_FALSE(io.IsNotFound());
  EXPECT_FALSE(io.IsParseError());
  EXPECT_FALSE(io.IsInvalidArgument());
}

TEST(StatusTest, AllCodeNamesRoundTripThroughToString) {
  const std::pair<Status, std::string> cases[] = {
      {Status::InvalidArgument("m"), "InvalidArgument: m"},
      {Status::NotFound("m"), "NotFound: m"},
      {Status::AlreadyExists("m"), "AlreadyExists: m"},
      {Status::OutOfRange("m"), "OutOfRange: m"},
      {Status::TimedOut("m"), "TimedOut: m"},
      {Status::IOError("m"), "IOError: m"},
      {Status::ParseError("m"), "ParseError: m"},
      {Status::Internal("m"), "Internal: m"},
      {Status::NotImplemented("m"), "NotImplemented: m"},
  };
  for (const auto& [st, expected] : cases) {
    EXPECT_EQ(st.ToString(), expected);
    EXPECT_EQ(st.ToString(),
              std::string(StatusCodeName(st.code())) + ": " + st.message());
  }
}

TEST(StatusTest, CopyAndMovePreserveCodeAndMessage) {
  Status original = Status::OutOfRange("index 9 out of [0, 3)");
  Status copy = original;
  EXPECT_EQ(copy.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(copy.message(), original.message());
  Status moved = std::move(original);
  EXPECT_EQ(moved.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(moved.message(), "index 9 out of [0, 3)");
}

}  // namespace
}  // namespace wireframe
