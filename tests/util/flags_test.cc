#include "util/flags.h"

#include <gtest/gtest.h>

namespace wireframe {
namespace {

Flags Make(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(args.data()));
}

TEST(FlagsTest, EqualsSyntax) {
  Flags f = Make({"--scale=0.5", "--seed=42"});
  EXPECT_DOUBLE_EQ(f.GetDouble("scale", 1.0), 0.5);
  EXPECT_EQ(f.GetInt("seed", 0), 42);
}

TEST(FlagsTest, SpaceSyntax) {
  Flags f = Make({"--name", "table1"});
  EXPECT_EQ(f.GetString("name", ""), "table1");
}

TEST(FlagsTest, BareFlagIsTrue) {
  Flags f = Make({"--verbose"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_TRUE(f.Has("verbose"));
  EXPECT_FALSE(f.Has("quiet"));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  Flags f = Make({});
  EXPECT_EQ(f.GetInt("n", 7), 7);
  EXPECT_EQ(f.GetString("s", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(f.GetDouble("d", 2.5), 2.5);
  EXPECT_FALSE(f.GetBool("b", false));
}

TEST(FlagsTest, BoolSpellings) {
  EXPECT_TRUE(Make({"--a=true"}).GetBool("a", false));
  EXPECT_TRUE(Make({"--a=1"}).GetBool("a", false));
  EXPECT_TRUE(Make({"--a=yes"}).GetBool("a", false));
  EXPECT_FALSE(Make({"--a=false"}).GetBool("a", true));
  EXPECT_FALSE(Make({"--a=0"}).GetBool("a", true));
}

TEST(FlagsTest, LastValueWins) {
  Flags f = Make({"--x=1", "--x=2"});
  EXPECT_EQ(f.GetInt("x", 0), 2);
}

}  // namespace
}  // namespace wireframe
