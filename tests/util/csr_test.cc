#include "util/csr.h"

#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace wireframe {
namespace {

TEST(CsrTest, EmptyBuild) {
  const Csr csr = Csr::Build({});
  EXPECT_EQ(csr.NumEntries(), 0u);
  EXPECT_TRUE(csr.Nodes().empty());
  EXPECT_TRUE(csr.Neighbors(7).empty());
  EXPECT_FALSE(csr.Contains(7, 8));
}

TEST(CsrTest, DefaultConstructedBehavesLikeEmpty) {
  const Csr csr;
  EXPECT_EQ(csr.NumEntries(), 0u);
  EXPECT_TRUE(csr.Neighbors(0).empty());
}

TEST(CsrTest, BuildSortsKeysAndSpans) {
  const Csr csr = Csr::Build({{5, 9}, {2, 4}, {5, 1}, {2, 8}, {9, 0}});
  ASSERT_EQ(csr.Nodes().size(), 3u);
  EXPECT_EQ(csr.Nodes()[0], 2u);
  EXPECT_EQ(csr.Nodes()[1], 5u);
  EXPECT_EQ(csr.Nodes()[2], 9u);
  const auto at5 = csr.Neighbors(5);
  ASSERT_EQ(at5.size(), 2u);
  EXPECT_EQ(at5[0], 1u);
  EXPECT_EQ(at5[1], 9u);
  EXPECT_EQ(csr.NumEntries(), 5u);
}

TEST(CsrTest, ContainsIsExact) {
  const Csr csr = Csr::Build({{1, 2}, {1, 4}, {3, 0}});
  EXPECT_TRUE(csr.Contains(1, 2));
  EXPECT_TRUE(csr.Contains(1, 4));
  EXPECT_TRUE(csr.Contains(3, 0));
  EXPECT_FALSE(csr.Contains(1, 3));
  EXPECT_FALSE(csr.Contains(2, 2));
  EXPECT_FALSE(csr.Contains(0, 0));
}

TEST(CsrTest, ForEachIsKeyMajorAscending) {
  const Csr csr = Csr::Build({{4, 7}, {0, 3}, {4, 1}, {0, 9}});
  std::vector<std::pair<NodeId, NodeId>> seen;
  csr.ForEach([&](NodeId k, NodeId v) { seen.emplace_back(k, v); });
  const std::vector<std::pair<NodeId, NodeId>> want = {
      {0, 3}, {0, 9}, {4, 1}, {4, 7}};
  EXPECT_EQ(seen, want);
}

// Keys spread over a huge id space skip the dense direct index (max_key
// >> 8 * distinct + 1024) and take the binary-search fallback; it must
// answer identically to the dense path.
TEST(CsrTest, SparseKeySpaceFallsBackToBinarySearch) {
  const Csr csr = Csr::Build(
      {{5, 1}, {5, 7}, {70000, 2}, {2000000, 9}, {2000000, 3}});
  ASSERT_EQ(csr.Nodes().size(), 3u);
  EXPECT_EQ(csr.NumEntries(), 5u);
  // Present keys.
  const auto at5 = csr.Neighbors(5);
  ASSERT_EQ(at5.size(), 2u);
  EXPECT_EQ(at5[0], 1u);
  EXPECT_EQ(at5[1], 7u);
  EXPECT_EQ(csr.Neighbors(70000).size(), 1u);
  const auto top = csr.Neighbors(2000000);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 3u);
  EXPECT_EQ(top[1], 9u);
  // Absent below, between, and above the key range.
  EXPECT_TRUE(csr.Neighbors(0).empty());
  EXPECT_TRUE(csr.Neighbors(6).empty());
  EXPECT_TRUE(csr.Neighbors(100000).empty());
  EXPECT_TRUE(csr.Neighbors(3000000).empty());
  EXPECT_TRUE(csr.Contains(5, 7));
  EXPECT_FALSE(csr.Contains(5, 2));
  EXPECT_FALSE(csr.Contains(6, 7));
  EXPECT_FALSE(csr.Contains(3000000, 9));
}

TEST(CsrTest, BuildFromSortedMatchesBuild) {
  const std::vector<std::pair<NodeId, NodeId>> sorted = {
      {1, 2}, {1, 5}, {4, 0}, {9, 9}};
  const Csr from_sorted =
      Csr::BuildFromSorted(sorted.size(), [&](size_t i) { return sorted[i]; });
  const Csr from_unsorted = Csr::Build({{9, 9}, {1, 5}, {4, 0}, {1, 2}});
  ASSERT_EQ(from_sorted.NumEntries(), from_unsorted.NumEntries());
  std::vector<std::pair<NodeId, NodeId>> a, b;
  from_sorted.ForEach([&](NodeId k, NodeId v) { a.emplace_back(k, v); });
  from_unsorted.ForEach([&](NodeId k, NodeId v) { b.emplace_back(k, v); });
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, sorted);
}

TEST(CsrTest, NeighborsAtMatchesNeighbors) {
  const Csr csr = Csr::Build({{10, 1}, {20, 2}, {20, 3}});
  ASSERT_EQ(csr.Nodes().size(), 2u);
  EXPECT_EQ(csr.NeighborsAt(0).size(), csr.Neighbors(10).size());
  EXPECT_EQ(csr.NeighborsAt(1).size(), csr.Neighbors(20).size());
}

}  // namespace
}  // namespace wireframe
