#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace wireframe {
namespace {

TEST(ThreadPoolTest, ResolveThreadsMapsZeroToHardware) {
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(7), 7u);
}

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<uint64_t> calls{0};
  Status st = pool.ParallelFor(
      0, {}, [&](uint32_t, uint64_t, uint64_t) { ++calls; });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (uint32_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    constexpr uint64_t kN = 10000;
    std::vector<std::atomic<uint32_t>> visits(kN);
    ParallelForOptions options;
    options.morsel_size = 7;  // deliberately not a divisor of kN
    Status st = pool.ParallelFor(
        kN, options, [&](uint32_t, uint64_t begin, uint64_t end) {
          ASSERT_EQ(begin % 7, 0u) << "morsels start at morsel multiples";
          for (uint64_t i = begin; i < end; ++i) {
            visits[i].fetch_add(1, std::memory_order_relaxed);
          }
        });
    ASSERT_TRUE(st.ok());
    for (uint64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(visits[i].load(), 1u) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, WorkerIdsAreInRangeAndZeroIsTheCaller) {
  ThreadPool pool(4);
  std::atomic<uint32_t> max_worker{0};
  const std::thread::id caller = std::this_thread::get_id();
  ParallelForOptions options;
  options.morsel_size = 1;
  Status st = pool.ParallelFor(
      1000, options, [&](uint32_t worker, uint64_t, uint64_t) {
        uint32_t seen = max_worker.load();
        while (worker > seen && !max_worker.compare_exchange_weak(seen, worker)) {
        }
        // Worker id 0 is reserved for the calling thread; whether the
        // caller actually claims a morsel is a scheduling race (spawned
        // workers may drain the range first), so only the id mapping is
        // asserted.
        if (std::this_thread::get_id() == caller) {
          EXPECT_EQ(worker, 0u);
        } else {
          EXPECT_NE(worker, 0u);
        }
      });
  ASSERT_TRUE(st.ok());
  EXPECT_LT(max_worker.load(), 4u);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  uint64_t sum = 0;  // unsynchronized on purpose: everything is inline
  Status st = pool.ParallelFor(
      100, {}, [&](uint32_t worker, uint64_t begin, uint64_t end) {
        EXPECT_EQ(worker, 0u);
        EXPECT_EQ(std::this_thread::get_id(), caller);
        for (uint64_t i = begin; i < end; ++i) sum += i;
      });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(sum, 99ull * 100 / 2);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  ParallelForOptions options;
  options.morsel_size = 1;
  EXPECT_THROW(
      {
        pool.ParallelFor(1000, options,
                         [&](uint32_t, uint64_t begin, uint64_t) {
                           if (begin == 500) {
                             throw std::runtime_error("body failed");
                           }
                         });
      },
      std::runtime_error);

  // The pool survives a throwing job and runs the next one.
  std::atomic<uint64_t> calls{0};
  Status st = pool.ParallelFor(
      64, options, [&](uint32_t, uint64_t, uint64_t) { ++calls; });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls.load(), 64u);
}

TEST(ThreadPoolTest, DeadlineExpiryMidRunReturnsTimedOut) {
  ThreadPool pool(2);
  ParallelForOptions options;
  options.morsel_size = 1;
  options.deadline = Deadline::AfterSeconds(0.02);
  std::atomic<uint64_t> calls{0};
  Status st = pool.ParallelFor(
      1u << 20, options, [&](uint32_t, uint64_t, uint64_t) {
        ++calls;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      });
  EXPECT_TRUE(st.IsTimedOut()) << st.ToString();
  EXPECT_LT(calls.load(), 1u << 20) << "dispatch must stop at the deadline";
}

TEST(ThreadPoolTest, AlreadyExpiredDeadlineRunsNoBody) {
  ThreadPool pool(2);
  ParallelForOptions options;
  options.deadline = Deadline::AlreadyExpired();
  std::atomic<uint64_t> calls{0};
  Status st = pool.ParallelFor(
      1000, options, [&](uint32_t, uint64_t, uint64_t) { ++calls; });
  EXPECT_TRUE(st.IsTimedOut());
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ThreadPoolTest, StopFlagEndsDispatchWithOkStatus) {
  ThreadPool pool(2);
  std::atomic<bool> stop{false};
  ParallelForOptions options;
  options.morsel_size = 1;
  options.stop = &stop;
  std::atomic<uint64_t> calls{0};
  Status st = pool.ParallelFor(
      1u << 20, options, [&](uint32_t, uint64_t, uint64_t) {
        if (calls.fetch_add(1) == 100) stop.store(true);
      });
  EXPECT_TRUE(st.ok()) << "early stop is a result, not an error";
  EXPECT_LT(calls.load(), 1u << 20);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossManyLoops) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    ParallelForOptions options;
    options.morsel_size = 16;
    Status st = pool.ParallelFor(
        256, options, [&](uint32_t, uint64_t begin, uint64_t end) {
          uint64_t local = 0;
          for (uint64_t i = begin; i < end; ++i) local += i;
          sum.fetch_add(local, std::memory_order_relaxed);
        });
    ASSERT_TRUE(st.ok());
    ASSERT_EQ(sum.load(), 255ull * 256 / 2) << "round " << round;
  }
}

}  // namespace
}  // namespace wireframe
