#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace wireframe {
namespace {

TEST(ThreadPoolTest, ResolveThreadsMapsZeroToHardware) {
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(7), 7u);
}

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<uint64_t> calls{0};
  Status st = pool.ParallelFor(
      0, {}, [&](uint32_t, uint64_t, uint64_t) { ++calls; });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (uint32_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    constexpr uint64_t kN = 10000;
    std::vector<std::atomic<uint32_t>> visits(kN);
    ParallelForOptions options;
    options.morsel_size = 7;  // deliberately not a divisor of kN
    Status st = pool.ParallelFor(
        kN, options, [&](uint32_t, uint64_t begin, uint64_t end) {
          ASSERT_EQ(begin % 7, 0u) << "morsels start at morsel multiples";
          for (uint64_t i = begin; i < end; ++i) {
            visits[i].fetch_add(1, std::memory_order_relaxed);
          }
        });
    ASSERT_TRUE(st.ok());
    for (uint64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(visits[i].load(), 1u) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, WorkerIdsAreInRangeAndZeroIsTheCaller) {
  ThreadPool pool(4);
  std::atomic<uint32_t> max_worker{0};
  const std::thread::id caller = std::this_thread::get_id();
  ParallelForOptions options;
  options.morsel_size = 1;
  Status st = pool.ParallelFor(
      1000, options, [&](uint32_t worker, uint64_t, uint64_t) {
        uint32_t seen = max_worker.load();
        while (worker > seen &&
               !max_worker.compare_exchange_weak(seen, worker)) {
        }
        // Worker id 0 is reserved for the calling thread; whether the
        // caller actually claims a morsel is a scheduling race (spawned
        // workers may drain the range first), so only the id mapping is
        // asserted.
        if (std::this_thread::get_id() == caller) {
          EXPECT_EQ(worker, 0u);
        } else {
          EXPECT_NE(worker, 0u);
        }
      });
  ASSERT_TRUE(st.ok());
  EXPECT_LT(max_worker.load(), 4u);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  uint64_t sum = 0;  // unsynchronized on purpose: everything is inline
  Status st = pool.ParallelFor(
      100, {}, [&](uint32_t worker, uint64_t begin, uint64_t end) {
        EXPECT_EQ(worker, 0u);
        EXPECT_EQ(std::this_thread::get_id(), caller);
        for (uint64_t i = begin; i < end; ++i) sum += i;
      });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(sum, 99ull * 100 / 2);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  ParallelForOptions options;
  options.morsel_size = 1;
  EXPECT_THROW(
      {
        pool.ParallelFor(1000, options,
                         [&](uint32_t, uint64_t begin, uint64_t) {
                           if (begin == 500) {
                             throw std::runtime_error("body failed");
                           }
                         });
      },
      std::runtime_error);

  // The pool survives a throwing job and runs the next one.
  std::atomic<uint64_t> calls{0};
  Status st = pool.ParallelFor(
      64, options, [&](uint32_t, uint64_t, uint64_t) { ++calls; });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls.load(), 64u);
}

TEST(ThreadPoolTest, DeadlineExpiryMidRunReturnsTimedOut) {
  ThreadPool pool(2);
  ParallelForOptions options;
  options.morsel_size = 1;
  options.deadline = Deadline::AfterSeconds(0.02);
  std::atomic<uint64_t> calls{0};
  Status st = pool.ParallelFor(
      1u << 20, options, [&](uint32_t, uint64_t, uint64_t) {
        ++calls;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      });
  EXPECT_TRUE(st.IsTimedOut()) << st.ToString();
  EXPECT_LT(calls.load(), 1u << 20) << "dispatch must stop at the deadline";
}

TEST(ThreadPoolTest, AlreadyExpiredDeadlineRunsNoBody) {
  ThreadPool pool(2);
  ParallelForOptions options;
  options.deadline = Deadline::AlreadyExpired();
  std::atomic<uint64_t> calls{0};
  Status st = pool.ParallelFor(
      1000, options, [&](uint32_t, uint64_t, uint64_t) { ++calls; });
  EXPECT_TRUE(st.IsTimedOut());
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ThreadPoolTest, StopFlagEndsDispatchWithOkStatus) {
  ThreadPool pool(2);
  std::atomic<bool> stop{false};
  ParallelForOptions options;
  options.morsel_size = 1;
  options.stop = &stop;
  std::atomic<uint64_t> calls{0};
  Status st = pool.ParallelFor(
      1u << 20, options, [&](uint32_t, uint64_t, uint64_t) {
        if (calls.fetch_add(1) == 100) stop.store(true);
      });
  EXPECT_TRUE(st.ok()) << "early stop is a result, not an error";
  EXPECT_LT(calls.load(), 1u << 20);
}

TEST(ThreadPoolTest, CancelFlagSurfacesAsCancelled) {
  ThreadPool pool(2);
  std::atomic<bool> cancel{false};
  ParallelForOptions options;
  options.morsel_size = 1;
  options.cancel = &cancel;
  std::atomic<uint64_t> calls{0};
  Status st = pool.ParallelFor(
      1u << 20, options, [&](uint32_t, uint64_t, uint64_t) {
        if (calls.fetch_add(1) == 100) cancel.store(true);
      });
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
  EXPECT_LT(calls.load(), 1u << 20) << "dispatch must stop on cancel";
}

TEST(ThreadPoolTest, PreSetCancelRunsNoBody) {
  ThreadPool pool(2);
  std::atomic<bool> cancel{true};
  ParallelForOptions options;
  options.cancel = &cancel;
  std::atomic<uint64_t> calls{0};
  Status st = pool.ParallelFor(
      1000, options, [&](uint32_t, uint64_t, uint64_t) { ++calls; });
  EXPECT_TRUE(st.IsCancelled());
  EXPECT_EQ(calls.load(), 0u);
}

// The shared-runtime contract: ParallelFor may be called concurrently
// from many external threads against one pool, and every call covers its
// own range exactly once.
TEST(ThreadPoolTest, ConcurrentSubmissionsFromManyThreads) {
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr uint64_t kN = 20000;
  std::vector<uint64_t> sums(kCallers, 0);
  std::vector<Status> statuses(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      std::atomic<uint64_t> sum{0};
      ParallelForOptions options;
      options.morsel_size = 16;
      statuses[c] = pool.ParallelFor(
          kN, options, [&](uint32_t, uint64_t begin, uint64_t end) {
            uint64_t local = 0;
            for (uint64_t i = begin; i < end; ++i) local += i;
            sum.fetch_add(local, std::memory_order_relaxed);
          });
      sums[c] = sum.load();
    });
  }
  for (std::thread& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_TRUE(statuses[c].ok()) << "caller " << c;
    EXPECT_EQ(sums[c], (kN - 1) * kN / 2) << "caller " << c;
  }
}

// One caller's deadline expiry (or exception) must not disturb another
// in-flight task-group on the same pool.
TEST(ThreadPoolTest, FailingGroupLeavesConcurrentGroupIntact) {
  ThreadPool pool(4);
  std::atomic<uint64_t> good_calls{0};
  Status good_status;
  std::thread good([&] {
    ParallelForOptions options;
    options.morsel_size = 4;
    good_status = pool.ParallelFor(
        4096, options, [&](uint32_t, uint64_t begin, uint64_t end) {
          good_calls.fetch_add(end - begin, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::microseconds(20));
        });
  });
  std::thread bad([&] {
    ParallelForOptions options;
    options.morsel_size = 1;
    options.deadline = Deadline::AlreadyExpired();
    Status st = pool.ParallelFor(
        1u << 20, options, [&](uint32_t, uint64_t, uint64_t) {});
    EXPECT_TRUE(st.IsTimedOut());
  });
  bad.join();
  good.join();
  EXPECT_TRUE(good_status.ok()) << good_status.ToString();
  EXPECT_EQ(good_calls.load(), 4096u);
}

// Fairness: while a long task-group holds the pool, the single spawned
// worker must round-robin into a newly submitted short group (its caller
// drains its own morsels anyway, so worker participation — not mere
// completion — is what proves the scheduler interleaves groups).
TEST(ThreadPoolTest, WorkerServesShortGroupWhileLongGroupRuns) {
  ThreadPool pool(2);  // exactly one spawned worker
  std::atomic<bool> stop_long{false};
  std::atomic<uint64_t> long_calls{0};
  std::atomic<bool> long_done{false};
  std::thread long_caller([&] {
    ParallelForOptions options;
    options.morsel_size = 1;
    options.stop = &stop_long;
    Status st = pool.ParallelFor(
        1u << 20, options, [&](uint32_t, uint64_t, uint64_t) {
          long_calls.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        });
    EXPECT_TRUE(st.ok()) << st.ToString();
    long_done.store(true);
  });
  while (long_calls.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();  // long group provably occupies the pool
  }

  // Short group: slow morsels keep it dispatchable long enough that the
  // worker, alternating between the two groups, must claim some.
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<uint64_t> short_worker_morsels{0};
  ParallelForOptions options;
  options.morsel_size = 1;
  Status st = pool.ParallelFor(
      128, options, [&](uint32_t worker, uint64_t, uint64_t) {
        if (std::this_thread::get_id() != caller) {
          EXPECT_GT(worker, 0u);
          short_worker_morsels.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      });
  EXPECT_TRUE(st.ok());
  EXPECT_FALSE(long_done.load())
      << "the short group must finish while the long group runs";
  EXPECT_GT(short_worker_morsels.load(), 0u)
      << "round-robin must hand the worker short-group morsels";
  stop_long.store(true);
  long_caller.join();
}

// Stride-weighted scheduling: with exactly one spawned worker and two
// always-dispatchable groups of weights 4 and 1, the worker's picks must
// divide roughly 4:1 (the stride math makes this deterministic up to the
// rotation of the very first ties, so generous 2x bounds cannot flap).
TEST(ThreadPoolTest, WorkerPicksSplitByWeight) {
  ThreadPool pool(2);  // exactly one spawned worker
  std::atomic<bool> stop_heavy{false};
  std::atomic<bool> stop_light{false};
  std::atomic<uint64_t> heavy_worker_picks{0};
  std::atomic<uint64_t> light_worker_picks{0};

  std::thread heavy_caller([&] {
    ParallelForOptions options;
    options.morsel_size = 1;
    options.stop = &stop_heavy;
    options.weight = 4;
    Status st = pool.ParallelFor(
        1ull << 40, options, [&](uint32_t worker, uint64_t, uint64_t) {
          if (worker != 0) {
            heavy_worker_picks.fetch_add(1, std::memory_order_relaxed);
          }
          std::this_thread::sleep_for(std::chrono::microseconds(20));
        });
    EXPECT_TRUE(st.ok()) << st.ToString();
  });
  // The heavy group must be registered before the light one starts:
  // whichever group is alone on the pool gets the lock-free fast path's
  // picks for free, and that startup bias has to point at the heavy
  // group for the ratio assertion to be one-sided.
  while (heavy_worker_picks.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  std::thread light_caller([&] {
    ParallelForOptions options;
    options.morsel_size = 1;
    options.stop = &stop_light;
    options.weight = 1;
    Status st = pool.ParallelFor(
        1ull << 40, options, [&](uint32_t worker, uint64_t, uint64_t) {
          if (worker != 0) {
            light_worker_picks.fetch_add(1, std::memory_order_relaxed);
          }
          std::this_thread::sleep_for(std::chrono::microseconds(20));
        });
    EXPECT_TRUE(st.ok()) << st.ToString();
  });

  // Measure deltas strictly while both groups are active (from the light
  // group's first worker pick onward): in that regime the single worker
  // follows the stride schedule, 4 heavy picks per light pick, exactly.
  while (light_worker_picks.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  const uint64_t heavy_base = heavy_worker_picks.load();
  const uint64_t light_base = light_worker_picks.load();
  while (heavy_worker_picks.load(std::memory_order_relaxed) <
         heavy_base + 200) {
    std::this_thread::yield();
  }
  stop_heavy.store(true);
  stop_light.store(true);
  heavy_caller.join();
  light_caller.join();

  const uint64_t heavy = heavy_worker_picks.load() - heavy_base;
  const uint64_t light = light_worker_picks.load() - light_base;
  EXPECT_GT(light, 0u) << "weighted scheduling must not starve the light group";
  EXPECT_GE(heavy, 2 * light)
      << "weight 4 vs 1 must skew worker picks (heavy=" << heavy
      << ", light=" << light << ")";
}

// Extreme weights (1:1000) must neither overflow the stride arithmetic
// nor starve the light group: its ParallelFor completes while the heavy
// group still floods the pool (the caller thread guarantees progress and
// the stride floor guarantees eventual worker visits).
TEST(ThreadPoolTest, ExtremeWeightRatioIsStarvationFree) {
  ThreadPool pool(2);
  std::atomic<bool> stop_heavy{false};
  std::atomic<bool> heavy_done{false};
  std::thread heavy_caller([&] {
    ParallelForOptions options;
    options.morsel_size = 1;
    options.stop = &stop_heavy;
    options.weight = 1000;
    Status st = pool.ParallelFor(
        1ull << 40, options, [&](uint32_t, uint64_t, uint64_t) {
          std::this_thread::sleep_for(std::chrono::microseconds(10));
        });
    EXPECT_TRUE(st.ok()) << st.ToString();
    heavy_done.store(true);
  });

  ParallelForOptions options;
  options.morsel_size = 1;
  options.weight = 1;
  std::atomic<uint64_t> covered{0};
  Status st = pool.ParallelFor(
      512, options, [&](uint32_t, uint64_t begin, uint64_t end) {
        covered.fetch_add(end - begin, std::memory_order_relaxed);
      });
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(covered.load(), 512u);
  EXPECT_FALSE(heavy_done.load())
      << "the light group must finish while the heavy group runs";
  stop_heavy.store(true);
  heavy_caller.join();
}

// Degenerate weights are clamped, not UB: weight 0 behaves like 1 and a
// weight beyond the stride scale still advances the group's pass.
TEST(ThreadPoolTest, DegenerateWeightsAreClamped) {
  ThreadPool pool(4);
  for (uint32_t weight : {0u, 1u, 1u << 30, UINT32_MAX}) {
    ParallelForOptions options;
    options.morsel_size = 8;
    options.weight = weight;
    std::atomic<uint64_t> covered{0};
    Status st = pool.ParallelFor(
        4096, options, [&](uint32_t, uint64_t begin, uint64_t end) {
          covered.fetch_add(end - begin, std::memory_order_relaxed);
        });
    ASSERT_TRUE(st.ok()) << "weight " << weight << ": " << st.ToString();
    ASSERT_EQ(covered.load(), 4096u) << "weight " << weight;
  }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossManyLoops) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    ParallelForOptions options;
    options.morsel_size = 16;
    Status st = pool.ParallelFor(
        256, options, [&](uint32_t, uint64_t begin, uint64_t end) {
          uint64_t local = 0;
          for (uint64_t i = begin; i < end; ++i) local += i;
          sum.fetch_add(local, std::memory_order_relaxed);
        });
    ASSERT_TRUE(st.ok());
    ASSERT_EQ(sum.load(), 255ull * 256 / 2) << "round " << round;
  }
}

}  // namespace
}  // namespace wireframe
