#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace wireframe {
namespace {

TEST(ThreadPoolTest, ResolveThreadsMapsZeroToHardware) {
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreads(7), 7u);
}

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<uint64_t> calls{0};
  Status st = pool.ParallelFor(
      0, {}, [&](uint32_t, uint64_t, uint64_t) { ++calls; });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (uint32_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    constexpr uint64_t kN = 10000;
    std::vector<std::atomic<uint32_t>> visits(kN);
    ParallelForOptions options;
    options.morsel_size = 7;  // deliberately not a divisor of kN
    Status st = pool.ParallelFor(
        kN, options, [&](uint32_t, uint64_t begin, uint64_t end) {
          ASSERT_EQ(begin % 7, 0u) << "morsels start at morsel multiples";
          for (uint64_t i = begin; i < end; ++i) {
            visits[i].fetch_add(1, std::memory_order_relaxed);
          }
        });
    ASSERT_TRUE(st.ok());
    for (uint64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(visits[i].load(), 1u) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, WorkerIdsAreInRangeAndZeroIsTheCaller) {
  ThreadPool pool(4);
  std::atomic<uint32_t> max_worker{0};
  const std::thread::id caller = std::this_thread::get_id();
  ParallelForOptions options;
  options.morsel_size = 1;
  Status st = pool.ParallelFor(
      1000, options, [&](uint32_t worker, uint64_t, uint64_t) {
        uint32_t seen = max_worker.load();
        while (worker > seen && !max_worker.compare_exchange_weak(seen, worker)) {
        }
        // Worker id 0 is reserved for the calling thread; whether the
        // caller actually claims a morsel is a scheduling race (spawned
        // workers may drain the range first), so only the id mapping is
        // asserted.
        if (std::this_thread::get_id() == caller) {
          EXPECT_EQ(worker, 0u);
        } else {
          EXPECT_NE(worker, 0u);
        }
      });
  ASSERT_TRUE(st.ok());
  EXPECT_LT(max_worker.load(), 4u);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  uint64_t sum = 0;  // unsynchronized on purpose: everything is inline
  Status st = pool.ParallelFor(
      100, {}, [&](uint32_t worker, uint64_t begin, uint64_t end) {
        EXPECT_EQ(worker, 0u);
        EXPECT_EQ(std::this_thread::get_id(), caller);
        for (uint64_t i = begin; i < end; ++i) sum += i;
      });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(sum, 99ull * 100 / 2);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  ParallelForOptions options;
  options.morsel_size = 1;
  EXPECT_THROW(
      {
        pool.ParallelFor(1000, options,
                         [&](uint32_t, uint64_t begin, uint64_t) {
                           if (begin == 500) {
                             throw std::runtime_error("body failed");
                           }
                         });
      },
      std::runtime_error);

  // The pool survives a throwing job and runs the next one.
  std::atomic<uint64_t> calls{0};
  Status st = pool.ParallelFor(
      64, options, [&](uint32_t, uint64_t, uint64_t) { ++calls; });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls.load(), 64u);
}

TEST(ThreadPoolTest, DeadlineExpiryMidRunReturnsTimedOut) {
  ThreadPool pool(2);
  ParallelForOptions options;
  options.morsel_size = 1;
  options.deadline = Deadline::AfterSeconds(0.02);
  std::atomic<uint64_t> calls{0};
  Status st = pool.ParallelFor(
      1u << 20, options, [&](uint32_t, uint64_t, uint64_t) {
        ++calls;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      });
  EXPECT_TRUE(st.IsTimedOut()) << st.ToString();
  EXPECT_LT(calls.load(), 1u << 20) << "dispatch must stop at the deadline";
}

TEST(ThreadPoolTest, AlreadyExpiredDeadlineRunsNoBody) {
  ThreadPool pool(2);
  ParallelForOptions options;
  options.deadline = Deadline::AlreadyExpired();
  std::atomic<uint64_t> calls{0};
  Status st = pool.ParallelFor(
      1000, options, [&](uint32_t, uint64_t, uint64_t) { ++calls; });
  EXPECT_TRUE(st.IsTimedOut());
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ThreadPoolTest, StopFlagEndsDispatchWithOkStatus) {
  ThreadPool pool(2);
  std::atomic<bool> stop{false};
  ParallelForOptions options;
  options.morsel_size = 1;
  options.stop = &stop;
  std::atomic<uint64_t> calls{0};
  Status st = pool.ParallelFor(
      1u << 20, options, [&](uint32_t, uint64_t, uint64_t) {
        if (calls.fetch_add(1) == 100) stop.store(true);
      });
  EXPECT_TRUE(st.ok()) << "early stop is a result, not an error";
  EXPECT_LT(calls.load(), 1u << 20);
}

TEST(ThreadPoolTest, CancelFlagSurfacesAsCancelled) {
  ThreadPool pool(2);
  std::atomic<bool> cancel{false};
  ParallelForOptions options;
  options.morsel_size = 1;
  options.cancel = &cancel;
  std::atomic<uint64_t> calls{0};
  Status st = pool.ParallelFor(
      1u << 20, options, [&](uint32_t, uint64_t, uint64_t) {
        if (calls.fetch_add(1) == 100) cancel.store(true);
      });
  EXPECT_TRUE(st.IsCancelled()) << st.ToString();
  EXPECT_LT(calls.load(), 1u << 20) << "dispatch must stop on cancel";
}

TEST(ThreadPoolTest, PreSetCancelRunsNoBody) {
  ThreadPool pool(2);
  std::atomic<bool> cancel{true};
  ParallelForOptions options;
  options.cancel = &cancel;
  std::atomic<uint64_t> calls{0};
  Status st = pool.ParallelFor(
      1000, options, [&](uint32_t, uint64_t, uint64_t) { ++calls; });
  EXPECT_TRUE(st.IsCancelled());
  EXPECT_EQ(calls.load(), 0u);
}

// The shared-runtime contract: ParallelFor may be called concurrently
// from many external threads against one pool, and every call covers its
// own range exactly once.
TEST(ThreadPoolTest, ConcurrentSubmissionsFromManyThreads) {
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr uint64_t kN = 20000;
  std::vector<uint64_t> sums(kCallers, 0);
  std::vector<Status> statuses(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      std::atomic<uint64_t> sum{0};
      ParallelForOptions options;
      options.morsel_size = 16;
      statuses[c] = pool.ParallelFor(
          kN, options, [&](uint32_t, uint64_t begin, uint64_t end) {
            uint64_t local = 0;
            for (uint64_t i = begin; i < end; ++i) local += i;
            sum.fetch_add(local, std::memory_order_relaxed);
          });
      sums[c] = sum.load();
    });
  }
  for (std::thread& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_TRUE(statuses[c].ok()) << "caller " << c;
    EXPECT_EQ(sums[c], (kN - 1) * kN / 2) << "caller " << c;
  }
}

// One caller's deadline expiry (or exception) must not disturb another
// in-flight task-group on the same pool.
TEST(ThreadPoolTest, FailingGroupLeavesConcurrentGroupIntact) {
  ThreadPool pool(4);
  std::atomic<uint64_t> good_calls{0};
  Status good_status;
  std::thread good([&] {
    ParallelForOptions options;
    options.morsel_size = 4;
    good_status = pool.ParallelFor(
        4096, options, [&](uint32_t, uint64_t begin, uint64_t end) {
          good_calls.fetch_add(end - begin, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::microseconds(20));
        });
  });
  std::thread bad([&] {
    ParallelForOptions options;
    options.morsel_size = 1;
    options.deadline = Deadline::AlreadyExpired();
    Status st = pool.ParallelFor(
        1u << 20, options, [&](uint32_t, uint64_t, uint64_t) {});
    EXPECT_TRUE(st.IsTimedOut());
  });
  bad.join();
  good.join();
  EXPECT_TRUE(good_status.ok()) << good_status.ToString();
  EXPECT_EQ(good_calls.load(), 4096u);
}

// Fairness: while a long task-group holds the pool, the single spawned
// worker must round-robin into a newly submitted short group (its caller
// drains its own morsels anyway, so worker participation — not mere
// completion — is what proves the scheduler interleaves groups).
TEST(ThreadPoolTest, WorkerServesShortGroupWhileLongGroupRuns) {
  ThreadPool pool(2);  // exactly one spawned worker
  std::atomic<bool> stop_long{false};
  std::atomic<uint64_t> long_calls{0};
  std::atomic<bool> long_done{false};
  std::thread long_caller([&] {
    ParallelForOptions options;
    options.morsel_size = 1;
    options.stop = &stop_long;
    Status st = pool.ParallelFor(
        1u << 20, options, [&](uint32_t, uint64_t, uint64_t) {
          long_calls.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        });
    EXPECT_TRUE(st.ok()) << st.ToString();
    long_done.store(true);
  });
  while (long_calls.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();  // long group provably occupies the pool
  }

  // Short group: slow morsels keep it dispatchable long enough that the
  // worker, alternating between the two groups, must claim some.
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<uint64_t> short_worker_morsels{0};
  ParallelForOptions options;
  options.morsel_size = 1;
  Status st = pool.ParallelFor(
      128, options, [&](uint32_t worker, uint64_t, uint64_t) {
        if (std::this_thread::get_id() != caller) {
          EXPECT_GT(worker, 0u);
          short_worker_morsels.fetch_add(1, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      });
  EXPECT_TRUE(st.ok());
  EXPECT_FALSE(long_done.load())
      << "the short group must finish while the long group runs";
  EXPECT_GT(short_worker_morsels.load(), 0u)
      << "round-robin must hand the worker short-group morsels";
  stop_long.store(true);
  long_caller.join();
}

TEST(ThreadPoolTest, PoolIsReusableAcrossManyLoops) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    ParallelForOptions options;
    options.morsel_size = 16;
    Status st = pool.ParallelFor(
        256, options, [&](uint32_t, uint64_t begin, uint64_t end) {
          uint64_t local = 0;
          for (uint64_t i = begin; i < end; ++i) local += i;
          sum.fetch_add(local, std::memory_order_relaxed);
        });
    ASSERT_TRUE(st.ok());
    ASSERT_EQ(sum.load(), 255ull * 256 / 2) << "round " << round;
  }
}

}  // namespace
}  // namespace wireframe
