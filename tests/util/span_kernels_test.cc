#include "util/span_kernels.h"

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace wireframe {
namespace {

/// Restores the runtime dispatch override on scope exit, so a failing
/// assertion cannot leak a forced-scalar state into later tests.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool force) { ForceScalarKernels(force); }
  ~ScopedForceScalar() { ForceScalarKernels(false); }
};

std::vector<NodeId> SortedDistinct(Rng& rng, size_t n, uint64_t universe) {
  std::set<NodeId> values;
  while (values.size() < n) {
    values.insert(static_cast<NodeId>(rng.Uniform(universe)));
  }
  return {values.begin(), values.end()};
}

/// The ground truth the kernels must reproduce exactly.
std::vector<NodeId> StdIntersection(const std::vector<NodeId>& a,
                                    const std::vector<NodeId>& b) {
  std::vector<NodeId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Runs IntersectSorted under the active dispatch and, separately, the
/// scalar reference body, and checks both against std::set_intersection.
void CheckIntersection(const std::vector<NodeId>& a,
                       const std::vector<NodeId>& b) {
  const std::vector<NodeId> expected = StdIntersection(a, b);
  std::vector<NodeId> got(std::min(a.size(), b.size()) + kIntersectPad,
                          kInvalidNode);
  size_t n = IntersectSorted(a, b, got.data());
  ASSERT_EQ(n, expected.size()) << "dispatch=" << KernelDispatchName();
  ASSERT_TRUE(std::equal(expected.begin(), expected.end(), got.begin()))
      << "dispatch=" << KernelDispatchName();

  std::vector<NodeId> ref(std::min(a.size(), b.size()) + kIntersectPad,
                          kInvalidNode);
  n = IntersectSortedScalar(a, b, ref.data());
  ASSERT_EQ(n, expected.size());
  ASSERT_TRUE(std::equal(expected.begin(), expected.end(), ref.begin()));
}

/// Checks SpanContains and ContainsManySorted against std::binary_search
/// for every probe.
void CheckProbes(const std::vector<NodeId>& span,
                 const std::vector<NodeId>& probes) {
  std::vector<NodeId> sorted_probes = probes;
  std::sort(sorted_probes.begin(), sorted_probes.end());
  std::vector<uint8_t> hits(sorted_probes.size(), 2);
  ContainsManySorted(span, sorted_probes, hits.data());
  for (size_t i = 0; i < sorted_probes.size(); ++i) {
    const bool expected =
        std::binary_search(span.begin(), span.end(), sorted_probes[i]);
    ASSERT_EQ(hits[i] != 0, expected) << "probe " << sorted_probes[i];
    ASSERT_EQ(SpanContains(span, sorted_probes[i]), expected);
  }
  // Unsorted batches must stay correct (the monotone walk restarts).
  std::vector<uint8_t> unsorted_hits(probes.size(), 2);
  ContainsManySorted(span, probes, unsorted_hits.data());
  for (size_t i = 0; i < probes.size(); ++i) {
    ASSERT_EQ(unsorted_hits[i] != 0,
              std::binary_search(span.begin(), span.end(), probes[i]));
  }
}

TEST(SpanKernelsTest, DispatchIsConsistent) {
  // Whatever the hardware, the reported dispatch must match the gates.
  const bool avx2 = ActiveKernelDispatch() == KernelDispatch::kAvx2;
  EXPECT_EQ(avx2, KernelAvx2Compiled() && CpuHasAvx2() &&
                      !ScalarKernelsForced());
  EXPECT_STREQ(KernelDispatchName(), avx2 ? "avx2" : "scalar");
  const std::string meta = KernelCpuFeaturesMeta();
  EXPECT_NE(meta.find("avx2_supported="), std::string::npos);
  EXPECT_NE(meta.find("dispatch="), std::string::npos);

  ScopedForceScalar forced(true);
  EXPECT_EQ(ActiveKernelDispatch(), KernelDispatch::kScalar);
  EXPECT_STREQ(KernelDispatchName(), "scalar");
}

TEST(SpanKernelsTest, EmptyAndTrivialSpans) {
  const std::vector<NodeId> empty;
  const std::vector<NodeId> one{42};
  const std::vector<NodeId> some{1, 5, 9, 1000};
  for (const bool force : {false, true}) {
    ScopedForceScalar forced(force);
    CheckIntersection(empty, empty);
    CheckIntersection(empty, some);
    CheckIntersection(some, empty);
    CheckIntersection(one, some);
    CheckIntersection(some, some);
    CheckProbes(empty, some);
    CheckProbes(one, {41, 42, 43});
    EXPECT_FALSE(SpanContains(empty, 0));
  }
}

TEST(SpanKernelsTest, GallopLowerBoundMatchesStdLowerBound) {
  Rng rng(7701);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<NodeId> data =
        SortedDistinct(rng, 1 + rng.Uniform(300), 2000);
    for (int p = 0; p < 40; ++p) {
      const NodeId x = static_cast<NodeId>(rng.Uniform(2100));
      const size_t from = rng.Uniform(data.size() + 1);
      const size_t got = GallopLowerBound(data.data(), data.size(), from, x);
      const size_t expected = static_cast<size_t>(
          std::lower_bound(data.begin() + static_cast<ptrdiff_t>(from),
                           data.end(), x) -
          data.begin());
      ASSERT_EQ(got, expected) << "from=" << from << " x=" << x;
    }
  }
}

// Adversarial shapes the issue calls out: extreme 1:10^4 size ratios
// (the galloping regime), all-hit and all-miss selectivities, ids
// hugging UINT32_MAX, and lengths that are not multiples of the 8-lane
// width (tail handling).
TEST(SpanKernelsTest, AdversarialShapes) {
  for (const bool force : {false, true}) {
    ScopedForceScalar forced(force);

    // 1 : 10^4 ratio.
    std::vector<NodeId> small{3, 70000, 1234567};
    std::vector<NodeId> large(30000);
    for (size_t i = 0; i < large.size(); ++i) {
      large[i] = static_cast<NodeId>(i * 7);
    }
    CheckIntersection(small, large);
    CheckIntersection(large, small);

    // All-hit: identical spans, length not a multiple of 8.
    std::vector<NodeId> odd(1037);
    for (size_t i = 0; i < odd.size(); ++i) {
      odd[i] = static_cast<NodeId>(i * 3 + 1);
    }
    CheckIntersection(odd, odd);

    // All-miss: interleaved evens vs odds, near-equal sizes.
    std::vector<NodeId> evens(777), odds(770);
    for (size_t i = 0; i < evens.size(); ++i) {
      evens[i] = static_cast<NodeId>(2 * i);
    }
    for (size_t i = 0; i < odds.size(); ++i) {
      odds[i] = static_cast<NodeId>(2 * i + 1);
    }
    CheckIntersection(evens, odds);

    // Ids at the top of the 32-bit space (no overflow in the compare or
    // gallop arithmetic).
    std::vector<NodeId> hi_a, hi_b;
    for (uint32_t d = 40; d > 0; --d) hi_a.push_back(UINT32_MAX - 2 * d);
    for (uint32_t d = 33; d > 0; --d) hi_b.push_back(UINT32_MAX - 3 * d);
    hi_a.push_back(UINT32_MAX);
    hi_b.push_back(UINT32_MAX);
    CheckIntersection(hi_a, hi_b);
    CheckProbes(hi_a, hi_b);

    // Every tail length around the lane width.
    for (size_t na = 1; na <= 19; ++na) {
      for (size_t nb = 1; nb <= 19; ++nb) {
        std::vector<NodeId> a, b;
        for (size_t i = 0; i < na; ++i) a.push_back(static_cast<NodeId>(i * 2));
        for (size_t i = 0; i < nb; ++i) b.push_back(static_cast<NodeId>(i * 3));
        CheckIntersection(a, b);
      }
    }
  }
}

// Randomized equivalence against the std:: algorithms across densities
// and size ratios, under both dispatches.
TEST(SpanKernelsTest, RandomizedAgainstStdAlgorithms) {
  Rng rng(991133);
  for (const bool force : {false, true}) {
    ScopedForceScalar forced(force);
    for (int trial = 0; trial < 60; ++trial) {
      const uint64_t universe = 1 + rng.Uniform(5000);
      const size_t na = 1 + rng.Uniform(std::min<uint64_t>(universe, 800));
      const size_t nb = 1 + rng.Uniform(std::min<uint64_t>(universe, 800));
      const std::vector<NodeId> a = SortedDistinct(rng, na, universe);
      const std::vector<NodeId> b = SortedDistinct(rng, nb, universe);
      CheckIntersection(a, b);
      CheckProbes(a, b);
    }
  }
}

// The AVX2 body may store a full 8-lane vector for the final partial
// block of matches; certify it never writes past the documented pad.
TEST(SpanKernelsTest, OutputStaysWithinPad) {
  Rng rng(4242);
  for (int trial = 0; trial < 40; ++trial) {
    const std::vector<NodeId> a = SortedDistinct(rng, 64, 96);
    const std::vector<NodeId> b = SortedDistinct(rng, 64, 96);
    const std::vector<NodeId> expected = StdIntersection(a, b);
    std::vector<NodeId> out(64 + kIntersectPad, 0xDEADBEEF);
    const size_t n = IntersectSorted(a, b, out.data());
    ASSERT_EQ(n, expected.size());
    // Slots past n + pad-use are untouched garbage or pad writes; slots
    // before n are exactly the intersection.
    ASSERT_TRUE(std::equal(expected.begin(), expected.end(), out.begin()));
  }
}

}  // namespace
}  // namespace wireframe
