#include "util/timer.h"

#include <thread>

#include <gtest/gtest.h>

namespace wireframe {
namespace {

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(watch.ElapsedMillis(), 15);
  EXPECT_GE(watch.ElapsedMicros(), 15000);
  EXPECT_GT(watch.ElapsedSeconds(), 0.0);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  watch.Restart();
  EXPECT_LT(watch.ElapsedMillis(), 15);
}

TEST(DeadlineTest, DefaultNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.never_expires());
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, AlreadyExpired) {
  Deadline d = Deadline::AlreadyExpired();
  EXPECT_FALSE(d.never_expires());
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineTest, ExpiresAfterDelay) {
  Deadline d = Deadline::AfterSeconds(0.02);
  EXPECT_FALSE(d.Expired());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineTest, FarFutureNotExpired) {
  Deadline d = Deadline::AfterSeconds(3600);
  EXPECT_FALSE(d.Expired());
}

}  // namespace
}  // namespace wireframe
