#include "util/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/wireframe.h"
#include "datagen/figures.h"
#include "util/timer.h"

namespace wireframe {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto fails = []() -> Result<int> { return Status::TimedOut("late"); };
  auto wrapper = [&]() -> Status {
    WF_ASSIGN_OR_RETURN(int x, fails());
    (void)x;
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsTimedOut());
}

TEST(ResultTest, AssignOrReturnUnwrapsValue) {
  auto gives = []() -> Result<int> { return 5; };
  auto wrapper = [&]() -> Result<int> {
    WF_ASSIGN_OR_RETURN(int x, gives());
    return x * 2;
  };
  Result<int> r = wrapper();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 10);
}

TEST(ResultTest, AssignOrReturnPreservesCodeAndMessage) {
  auto fails = []() -> Result<int> {
    return Status::ParseError("line 3: bad term");
  };
  auto outer = [&]() -> Result<std::string> {
    WF_ASSIGN_OR_RETURN(int x, fails());
    return std::to_string(x);
  };
  Result<std::string> r = outer();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
  EXPECT_EQ(r.status().message(), "line 3: bad term");
  EXPECT_EQ(r.status().ToString(), "ParseError: line 3: bad term");
}

// noinline keeps gcc 12 from "seeing through" the variant and raising a
// spurious -Wmaybe-uninitialized on the dead error branch of status().
[[gnu::noinline]] Result<int> MakeOkResult(int v) { return v; }

TEST(ResultTest, StatusOfOkResultIsOkAndEmpty) {
  Result<int> r = MakeOkResult(1);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOk);
  EXPECT_TRUE(r.status().message().empty());
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  auto make = [] { return Result<int>(Status::Internal("boom")); };
  EXPECT_DEATH(make().value(), "Check failed");
  EXPECT_DEATH(*make(), "boom");
}

TEST(ResultDeathTest, ArrowOnErrorAborts) {
  auto make = [] { return Result<std::string>(Status::NotFound("gone")); };
  EXPECT_DEATH(make()->size(), "gone");
}

// End-to-end failure-branch propagation: errors raised deep inside the
// engine must surface through WireframeEngine::Run's Result chain with
// code and message intact.

TEST(ResultPropagationTest, EngineRunSurfacesInvalidArgument) {
  Database db = MakeFig1Graph();
  Catalog cat = Catalog::Build(db.store());
  QueryGraph q;  // two disconnected components: rejected by validation
  VarId a = q.AddVar("a"), b = q.AddVar("b");
  VarId c = q.AddVar("c"), d = q.AddVar("d");
  q.AddEdge(a, 0, b);
  q.AddEdge(c, 1, d);
  WireframeEngine engine;
  CountingSink sink;
  Result<EngineStats> stats = engine.Run(db, cat, q, EngineOptions{}, &sink);
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsInvalidArgument());
  EXPECT_FALSE(stats.status().message().empty());
  EXPECT_EQ(sink.count(), 0u);  // no partial output on failure
}

TEST(ResultPropagationTest, EngineRunSurfacesTimedOut) {
  Database db = MakeFig1Graph();
  Catalog cat = Catalog::Build(db.store());
  auto q = MakeFig1Query(db);
  ASSERT_TRUE(q.ok());
  WireframeEngine engine;
  CountingSink sink;
  EngineOptions options;
  options.deadline = Deadline::AlreadyExpired();
  Result<EngineStats> stats = engine.Run(db, cat, *q, options, &sink);
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsTimedOut());
  EXPECT_EQ(stats.status().code(), StatusCode::kTimedOut);
}

}  // namespace
}  // namespace wireframe
