#include "util/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace wireframe {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto fails = []() -> Result<int> { return Status::TimedOut("late"); };
  auto wrapper = [&]() -> Status {
    WF_ASSIGN_OR_RETURN(int x, fails());
    (void)x;
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsTimedOut());
}

TEST(ResultTest, AssignOrReturnUnwrapsValue) {
  auto gives = []() -> Result<int> { return 5; };
  auto wrapper = [&]() -> Result<int> {
    WF_ASSIGN_OR_RETURN(int x, gives());
    return x * 2;
  };
  Result<int> r = wrapper();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 10);
}

}  // namespace
}  // namespace wireframe
