#include "util/flat_hash.h"

#include <set>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "util/random.h"

namespace wireframe {
namespace {

TEST(PairKeySetTest, InsertContainsErase) {
  PairKeySet set;
  EXPECT_TRUE(set.Insert(42));
  EXPECT_FALSE(set.Insert(42));
  EXPECT_TRUE(set.Contains(42));
  EXPECT_FALSE(set.Contains(43));
  EXPECT_EQ(set.Size(), 1u);
  EXPECT_TRUE(set.Erase(42));
  EXPECT_FALSE(set.Erase(42));
  EXPECT_FALSE(set.Contains(42));
  EXPECT_EQ(set.Size(), 0u);
}

TEST(PairKeySetTest, GrowsThroughRehash) {
  PairKeySet set;
  for (uint64_t i = 0; i < 10000; ++i) EXPECT_TRUE(set.Insert(i * 977 + 3));
  EXPECT_EQ(set.Size(), 10000u);
  for (uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(set.Contains(i * 977 + 3)) << i;
  }
  EXPECT_FALSE(set.Contains(1));
}

TEST(PairKeySetTest, TombstoneReuseKeepsTableUsable) {
  PairKeySet set;
  // Repeated insert/erase cycles must not degrade or grow unboundedly.
  for (int round = 0; round < 200; ++round) {
    for (uint64_t i = 0; i < 64; ++i) {
      EXPECT_TRUE(set.Insert(round * 1000 + i));
    }
    for (uint64_t i = 0; i < 64; ++i) {
      EXPECT_TRUE(set.Erase(round * 1000 + i));
    }
  }
  EXPECT_EQ(set.Size(), 0u);
}

TEST(PairKeySetTest, ForEachVisitsExactlyLiveKeys) {
  PairKeySet set;
  std::set<uint64_t> expected;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    uint64_t key = rng.Next() >> 8;
    if (set.Insert(key)) expected.insert(key);
  }
  // Erase a third.
  int k = 0;
  for (auto it = expected.begin(); it != expected.end();) {
    if (++k % 3 == 0) {
      EXPECT_TRUE(set.Erase(*it));
      it = expected.erase(it);
    } else {
      ++it;
    }
  }
  std::set<uint64_t> got;
  set.ForEach([&](uint64_t key) { got.insert(key); });
  EXPECT_EQ(got, expected);
}

TEST(PairKeySetTest, MatchesStdUnorderedSetUnderRandomOps) {
  PairKeySet set;
  std::unordered_set<uint64_t> reference;
  Rng rng(99);
  for (int op = 0; op < 50000; ++op) {
    const uint64_t key = rng.Uniform(2000);
    switch (rng.Uniform(3)) {
      case 0:
        EXPECT_EQ(set.Insert(key), reference.insert(key).second);
        break;
      case 1:
        EXPECT_EQ(set.Erase(key), reference.erase(key) > 0);
        break;
      default:
        EXPECT_EQ(set.Contains(key), reference.count(key) > 0);
    }
    if (op % 1000 == 0) {
      EXPECT_EQ(set.Size(), reference.size());
    }
  }
}

TEST(PairKeySetTest, ReserveAvoidsLaterGrowth) {
  PairKeySet set;
  set.Reserve(100000);
  for (uint64_t i = 0; i < 100000; ++i) set.Insert(i);
  EXPECT_EQ(set.Size(), 100000u);
}

TEST(NodeMapTest, BracketInsertsAndFinds) {
  NodeMap<int> map;
  map[7] = 42;
  map[9] = 1;
  EXPECT_EQ(map.Size(), 2u);
  ASSERT_NE(map.Find(7), nullptr);
  EXPECT_EQ(*map.Find(7), 42);
  EXPECT_EQ(map.Find(8), nullptr);
  map[7] = 43;  // overwrite, not a new entry
  EXPECT_EQ(map.Size(), 2u);
  EXPECT_EQ(*map.Find(7), 43);
}

TEST(NodeMapTest, DefaultConstructsNewValues) {
  NodeMap<std::vector<NodeId>> map;
  map[3].push_back(1);
  map[3].push_back(2);
  EXPECT_EQ(map[3].size(), 2u);
}

TEST(NodeMapTest, GrowthPreservesEntries) {
  NodeMap<uint32_t> map;
  for (NodeId i = 0; i < 5000; ++i) map[i] = i * 2;
  EXPECT_EQ(map.Size(), 5000u);
  for (NodeId i = 0; i < 5000; ++i) {
    ASSERT_NE(map.Find(i), nullptr) << i;
    EXPECT_EQ(*map.Find(i), i * 2);
  }
}

TEST(NodeMapTest, ForEachVisitsAll) {
  NodeMap<int> map;
  for (NodeId i = 10; i < 20; ++i) map[i] = static_cast<int>(i);
  std::set<NodeId> keys;
  int sum = 0;
  map.ForEach([&](NodeId k, int& v) {
    keys.insert(k);
    sum += v;
  });
  EXPECT_EQ(keys.size(), 10u);
  EXPECT_EQ(sum, 145);
}

TEST(NodeMapTest, EraseIfFiltersAndRebuilds) {
  NodeMap<uint32_t> map;
  for (NodeId i = 0; i < 100; ++i) map[i] = i;
  map.EraseIf([](NodeId, uint32_t& v) { return v % 2 == 0; });
  EXPECT_EQ(map.Size(), 50u);
  EXPECT_EQ(map.Find(4), nullptr);
  ASSERT_NE(map.Find(5), nullptr);
  EXPECT_EQ(*map.Find(5), 5u);
}

TEST(NodeMapTest, MatchesStdUnorderedMapUnderRandomOps) {
  NodeMap<uint32_t> map;
  std::unordered_map<NodeId, uint32_t> reference;
  Rng rng(7);
  for (int op = 0; op < 20000; ++op) {
    const NodeId key = static_cast<NodeId>(rng.Uniform(500));
    if (rng.Bernoulli(0.7)) {
      const uint32_t value = static_cast<uint32_t>(rng.Uniform(1000));
      map[key] = value;
      reference[key] = value;
    } else {
      const uint32_t* found = map.Find(key);
      auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_EQ(found, nullptr);
      } else {
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(*found, it->second);
      }
    }
  }
  EXPECT_EQ(map.Size(), reference.size());
}

}  // namespace
}  // namespace wireframe
