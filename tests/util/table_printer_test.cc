#include "util/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace wireframe {
namespace {

TEST(TablePrinterTest, FormatsCountsWithGrouping) {
  EXPECT_EQ(TablePrinter::FormatCount(0), "0");
  EXPECT_EQ(TablePrinter::FormatCount(999), "999");
  EXPECT_EQ(TablePrinter::FormatCount(1000), "1,000");
  EXPECT_EQ(TablePrinter::FormatCount(2931986), "2,931,986");
  EXPECT_EQ(TablePrinter::FormatCount(1000000000), "1,000,000,000");
}

TEST(TablePrinterTest, FormatsSecondsByMagnitude) {
  EXPECT_EQ(TablePrinter::FormatSeconds(0.00123), "0.0012");
  EXPECT_EQ(TablePrinter::FormatSeconds(1.234), "1.234");
  EXPECT_EQ(TablePrinter::FormatSeconds(88.0), "88.0");
}

TEST(TablePrinterTest, TimeoutMarkerMatchesPaper) {
  EXPECT_EQ(TablePrinter::Timeout(), "*");
}

TEST(TablePrinterTest, PrintsAlignedTable) {
  TablePrinter t({"id", "name"});
  t.AddRow({"1", "alpha"});
  t.AddRow({"22", "b"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| id | name  |"), std::string::npos);
  EXPECT_NE(out.find("| 1  | alpha |"), std::string::npos);
  EXPECT_NE(out.find("| 22 | b     |"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"x"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_NE(os.str().find("| x |"), std::string::npos);
}

TEST(TablePrinterTest, CsvEscapesCommas) {
  TablePrinter t({"k", "v"});
  t.AddRow({"a,b", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "k,v\n\"a,b\",2\n");
}

}  // namespace
}  // namespace wireframe
