#include "core/wireframe.h"

#include <gtest/gtest.h>

#include "datagen/figures.h"
#include "datagen/synthetic.h"
#include "query/parser.h"
#include "testutil/fixtures.h"

namespace wireframe {
namespace {

class WireframeFig1Test : public testutil::Fig1Fixture {};

TEST_F(WireframeFig1Test, ProducesTwelveEmbeddings) {
  WireframeEngine engine;
  CountingSink sink;
  auto stats = engine.Run(db_, cat_, query(), EngineOptions{}, &sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->output_tuples, kFig1Embeddings);
  EXPECT_EQ(stats->ag_pairs, kFig1IdealAgEdges);
  EXPECT_EQ(sink.count(), kFig1Embeddings);
}

TEST_F(WireframeFig1Test, DetailedRunExposesPhases) {
  WireframeEngine engine;
  CountingSink sink;
  auto detail = engine.RunDetailed(db_, cat_, query(), EngineOptions{}, &sink);
  ASSERT_TRUE(detail.ok());
  EXPECT_FALSE(detail->cyclic);
  EXPECT_GE(detail->plan_seconds, 0.0);
  EXPECT_GE(detail->stats.phase1_seconds, 0.0);
  EXPECT_GE(detail->stats.phase2_seconds, 0.0);
  ASSERT_NE(detail->ag, nullptr);
  EXPECT_EQ(detail->ag->TotalQueryEdgePairs(), kFig1IdealAgEdges);
  EXPECT_EQ(detail->ag_plan.edge_order.size(), 3u);
  EXPECT_EQ(detail->embedding_plan.join_order.size(), 3u);
}

TEST_F(WireframeFig1Test, ExplainRendersBothShapeAndPlan) {
  WireframeEngine engine;
  auto text = engine.Explain(db_, cat_, query());
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("shape: acyclic"), std::string::npos);
  EXPECT_NE(text->find("AG plan"), std::string::npos);
}

class WireframeFig4Test : public testutil::Fig4Fixture {
 protected:
  uint64_t CountEmbeddings(WireframeOptions options, uint64_t* ag_pairs) {
    WireframeEngine engine(options);
    CountingSink sink;
    auto stats = engine.Run(db_, cat_, query(), EngineOptions{}, &sink);
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    if (ag_pairs) *ag_pairs = stats->ag_pairs;
    return stats->output_tuples;
  }
};

TEST_F(WireframeFig4Test, CyclicEmbeddingsCorrectInAllModes) {
  for (bool triangulate : {false, true}) {
    for (bool edge_burnback : {false, true}) {
      if (edge_burnback && !triangulate) continue;  // needs triangles
      WireframeOptions options;
      options.triangulate = triangulate;
      options.edge_burnback = edge_burnback;
      uint64_t ag_pairs = 0;
      EXPECT_EQ(CountEmbeddings(options, &ag_pairs), kFig4Embeddings)
          << "triangulate=" << triangulate
          << " edge_burnback=" << edge_burnback;
      EXPECT_EQ(ag_pairs, edge_burnback ? kFig4IdealAgEdges
                                        : kFig4NodeBurnbackAgEdges);
    }
  }
}

TEST_F(WireframeFig4Test, DetailedRunFlagsCyclic) {
  WireframeEngine engine;
  CountingSink sink;
  auto detail = engine.RunDetailed(db_, cat_, query(), EngineOptions{}, &sink);
  ASSERT_TRUE(detail.ok());
  EXPECT_TRUE(detail->cyclic);
  EXPECT_EQ(detail->ag_plan.chords.size(), 1u);
  EXPECT_GT(detail->chord_pairs, 0u);
}

TEST_F(WireframeFig4Test, ChordFiltersCutDeadBranchesInPhase2) {
  // Paper configuration (no edge burnback): the AG keeps the two spurious
  // D pairs; the chord filter must reject them during defactorization.
  WireframeOptions with, without;
  with.chords_in_phase2 = true;
  without.chords_in_phase2 = false;

  WireframeEngine engine_with(with), engine_without(without);
  CountingSink s1, s2;
  auto d1 = engine_with.RunDetailed(db_, cat_, query(), EngineOptions{}, &s1);
  auto d2 =
      engine_without.RunDetailed(db_, cat_, query(), EngineOptions{}, &s2);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d1->phase2_stats.emitted, kFig4Embeddings);
  EXPECT_EQ(d2->phase2_stats.emitted, kFig4Embeddings);
  EXPECT_EQ(d2->phase2_stats.chord_rejections, 0u);
  // With filtering, dead branches are cut strictly earlier.
  EXPECT_LE(d1->phase2_stats.extensions, d2->phase2_stats.extensions);
}

TEST_F(WireframeFig1Test, BushyModeMatchesPipelined) {
  WireframeOptions options;
  options.bushy_phase2 = true;
  WireframeEngine engine(options);
  CountingSink sink;
  auto detail = engine.RunDetailed(db_, cat_, query(), EngineOptions{}, &sink);
  ASSERT_TRUE(detail.ok());
  EXPECT_TRUE(detail->used_bushy);
  EXPECT_EQ(detail->phase2_stats.emitted, kFig1Embeddings);
  EXPECT_EQ(detail->stats.ag_pairs, kFig1IdealAgEdges);
}

TEST(WireframeEngineTest, BushyFallsBackOnWideQueries) {
  // 14-edge chain exceeds the bushy DP cap; the engine must fall back to
  // the pipelined defactorizer and still answer.
  DatabaseBuilder b;
  for (int i = 0; i < 15; ++i) {
    b.Add("n" + std::to_string(i), "p" + std::to_string(i),
          "n" + std::to_string(i + 1));
  }
  Database db = std::move(b).Build();
  Catalog cat = Catalog::Build(db.store());
  QueryGraph q;
  for (int i = 0; i <= 14; ++i) q.AddVar("v" + std::to_string(i));
  for (uint32_t i = 0; i < 14; ++i) q.AddEdge(i, i, i + 1);

  WireframeOptions options;
  options.bushy_phase2 = true;
  WireframeEngine engine(options);
  CountingSink sink;
  auto detail = engine.RunDetailed(db, cat, q, EngineOptions{}, &sink);
  ASSERT_TRUE(detail.ok()) << detail.status().ToString();
  EXPECT_FALSE(detail->used_bushy);
  EXPECT_EQ(detail->phase2_stats.emitted, 1u);
}

TEST(WireframeEngineTest, TimesOutOnExpiredDeadline) {
  Database db = MakeChainBlowupGraph(60, 60, 30);
  Catalog cat = Catalog::Build(db.store());
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", db);
  ASSERT_TRUE(q.ok());
  WireframeEngine engine;
  CountingSink sink;
  EngineOptions options;
  options.deadline = Deadline::AlreadyExpired();
  auto stats = engine.Run(db, cat, *q, options, &sink);
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsTimedOut());
}

TEST(WireframeEngineTest, DisconnectedQueryRejected) {
  Database db = MakeFig1Graph();
  Catalog cat = Catalog::Build(db.store());
  QueryGraph q;
  VarId a = q.AddVar("a"), b = q.AddVar("b");
  VarId c = q.AddVar("c"), d = q.AddVar("d");
  q.AddEdge(a, 0, b);
  q.AddEdge(c, 1, d);
  WireframeEngine engine;
  CountingSink sink;
  auto stats = engine.Run(db, cat, q, EngineOptions{}, &sink);
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsInvalidArgument());
}

TEST(WireframeEngineTest, FactorizationRatioGrowsWithFanout) {
  // |embeddings| / |AG| must scale with fan_in x fan_out on the blow-up
  // chain — the Fig. 1 claim, quantified.
  for (uint32_t fan : {5u, 20u, 50u}) {
    Database db = MakeChainBlowupGraph(fan, fan, 5);
    Catalog cat = Catalog::Build(db.store());
    auto q = SparqlParser::ParseAndBind(
        "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", db);
    ASSERT_TRUE(q.ok());
    WireframeEngine engine;
    CountingSink sink;
    auto stats = engine.Run(db, cat, *q, EngineOptions{}, &sink);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->output_tuples, static_cast<uint64_t>(fan) * fan);
    EXPECT_EQ(stats->ag_pairs, 2ull * fan + 1);
  }
}

}  // namespace
}  // namespace wireframe
