#include "core/answer_graph.h"

#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "query/templates.h"
#include "util/thread_pool.h"

namespace wireframe {
namespace {

// Chain ?v0 -0-> ?v1 -1-> ?v2.
QueryGraph ChainQuery() { return ChainTemplate(2).Instantiate({0, 1}); }

TEST(AnswerGraphTest, ConstructionMirrorsQuery) {
  QueryGraph q = ChainQuery();
  AnswerGraph ag(q);
  EXPECT_EQ(ag.NumEdgeSets(), 2u);
  EXPECT_EQ(ag.NumQueryEdges(), 2u);
  EXPECT_EQ(ag.NumVars(), 3u);
  EXPECT_EQ(ag.SrcVar(0), q.Edge(0).src);
  EXPECT_EQ(ag.DstVar(1), q.Edge(1).dst);
  EXPECT_FALSE(ag.IsMaterialized(0));
}

TEST(AnswerGraphTest, TouchedAfterMaterialization) {
  QueryGraph q = ChainQuery();
  AnswerGraph ag(q);
  EXPECT_FALSE(ag.IsTouched(0));
  ag.Set(0).Add(10, 20);
  ag.MarkMaterialized(0);
  EXPECT_TRUE(ag.IsTouched(0));
  EXPECT_TRUE(ag.IsTouched(1));
  EXPECT_FALSE(ag.IsTouched(2));  // v2 only touches edge 1
}

TEST(AnswerGraphTest, AlivenessAcrossTwoEdges) {
  QueryGraph q = ChainQuery();
  AnswerGraph ag(q);
  ag.Set(0).Add(10, 20);  // v0=10, v1=20
  ag.Set(0).Add(11, 21);
  ag.MarkMaterialized(0);
  ag.Set(1).Add(20, 30);  // v1=20, v2=30
  ag.MarkMaterialized(1);

  EXPECT_TRUE(ag.IsAlive(1, 20));   // in both sets at v1
  EXPECT_FALSE(ag.IsAlive(1, 21));  // missing from edge 1
  EXPECT_TRUE(ag.IsAlive(0, 10));
  EXPECT_TRUE(ag.IsAlive(2, 30));
  EXPECT_FALSE(ag.IsAlive(2, 99));
}

TEST(AnswerGraphTest, CandidatesFilterByAliveness) {
  QueryGraph q = ChainQuery();
  AnswerGraph ag(q);
  ag.Set(0).Add(10, 20);
  ag.Set(0).Add(11, 21);
  ag.MarkMaterialized(0);
  ag.Set(1).Add(20, 30);
  ag.MarkMaterialized(1);

  std::set<NodeId> mids;
  ag.ForEachCandidate(1, [&](NodeId c) { mids.insert(c); });
  EXPECT_EQ(mids, (std::set<NodeId>{20}));
  EXPECT_EQ(ag.CandidateCount(1), 1u);
  EXPECT_EQ(ag.CandidateCount(0), 2u);
}

TEST(AnswerGraphTest, CountAtRespectsSide) {
  QueryGraph q = ChainQuery();
  AnswerGraph ag(q);
  ag.Set(0).Add(10, 20);
  ag.Set(0).Add(10, 21);
  ag.MarkMaterialized(0);
  EXPECT_EQ(ag.CountAt(0, q.Edge(0).src, 10), 2u);
  EXPECT_EQ(ag.CountAt(0, q.Edge(0).dst, 20), 1u);
  EXPECT_EQ(ag.CountAt(0, q.Edge(0).dst, 10), 0u);
}

TEST(AnswerGraphTest, ChordSlotsExtendIncidence) {
  QueryGraph q = DiamondTemplate().Instantiate({0, 1, 2, 3});
  AnswerGraph ag(q);
  VarId x = q.FindVar("x"), y = q.FindVar("y");
  uint32_t slot = ag.AddChordSlot(x, y);
  EXPECT_EQ(slot, 4u);
  EXPECT_EQ(ag.NumEdgeSets(), 5u);
  EXPECT_EQ(ag.NumQueryEdges(), 4u);
  EXPECT_EQ(ag.SrcVar(slot), x);
  EXPECT_EQ(ag.DstVar(slot), y);
  // Unmaterialized chords do not constrain aliveness.
  ag.Set(0).Add(1, 2);
  ag.MarkMaterialized(0);
  EXPECT_TRUE(ag.IsAlive(x, 1));
}

TEST(AnswerGraphTest, TotalQueryEdgePairsExcludesChords) {
  QueryGraph q = DiamondTemplate().Instantiate({0, 1, 2, 3});
  AnswerGraph ag(q);
  uint32_t slot = ag.AddChordSlot(q.FindVar("x"), q.FindVar("y"));
  ag.Set(0).Add(1, 2);
  ag.Set(slot).Add(7, 8);
  ag.Set(slot).Add(7, 9);
  EXPECT_EQ(ag.TotalQueryEdgePairs(), 1u);
}

TEST(AnswerGraphTest, FreezePreservesDerivedState) {
  QueryGraph q = ChainQuery();
  AnswerGraph ag(q);
  ag.Set(0).Add(1, 10);
  ag.Set(0).Add(2, 10);
  ag.Set(0).Add(3, 11);
  ag.MarkMaterialized(0);
  ag.Set(1).Add(10, 20);
  ag.Set(1).Add(10, 21);
  ag.MarkMaterialized(1);
  ag.Set(1).Erase(10, 21);  // leave a tombstone for Freeze to compact

  const uint64_t candidates_before = ag.CandidateCount(1);
  ag.Freeze();
  EXPECT_TRUE(ag.IsFrozen());
  EXPECT_TRUE(ag.Set(0).IsFrozen());
  EXPECT_TRUE(ag.Set(1).IsFrozen());
  EXPECT_EQ(ag.TotalQueryEdgePairs(), 4u);
  EXPECT_EQ(ag.CandidateCount(1), candidates_before);
  EXPECT_TRUE(ag.IsAlive(1, 10));
  EXPECT_FALSE(ag.IsAlive(1, 11)) << "11 has no set-1 pair";
  EXPECT_EQ(ag.CountAt(0, 1, 10), 2u);
  std::vector<AgEdgeStats> stats = ag.Stats();
  EXPECT_EQ(stats[0].pairs, 3u);
  EXPECT_EQ(stats[1].pairs, 1u);
  // Idempotent.
  ag.Freeze();
  EXPECT_EQ(ag.TotalQueryEdgePairs(), 4u);
}

TEST(AnswerGraphTest, FreezeWithPoolMatchesSerialFreeze) {
  QueryGraph q = ChainQuery();
  AnswerGraph serial(q), parallel(q);
  for (AnswerGraph* ag : {&serial, &parallel}) {
    for (NodeId k = 0; k < 50; ++k) {
      ag->Set(0).Add(k, 100 + k % 7);
      ag->Set(1).Add(100 + k % 7, 200 + k % 3);
    }
    ag->MarkMaterialized(0);
    ag->MarkMaterialized(1);
  }
  serial.Freeze();
  ThreadPool pool(4);
  parallel.Freeze(&pool);
  for (uint32_t e = 0; e < 2; ++e) {
    std::set<std::pair<NodeId, NodeId>> a, b;
    serial.Set(e).ForEachPair([&](NodeId u, NodeId v) { a.emplace(u, v); });
    parallel.Set(e).ForEachPair(
        [&](NodeId u, NodeId v) { b.emplace(u, v); });
    EXPECT_EQ(a, b) << "edge " << e;
  }
}

TEST(AnswerGraphTest, StatsPerQueryEdge) {
  QueryGraph q = ChainQuery();
  AnswerGraph ag(q);
  ag.Set(0).Add(1, 2);
  ag.Set(0).Add(3, 2);
  ag.Set(1).Add(2, 4);
  std::vector<AgEdgeStats> stats = ag.Stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].pairs, 2u);
  EXPECT_EQ(stats[0].distinct_src, 2u);
  EXPECT_EQ(stats[0].distinct_dst, 1u);
  EXPECT_EQ(stats[1].pairs, 1u);
}

}  // namespace
}  // namespace wireframe
