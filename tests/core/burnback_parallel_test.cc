// Parallel-burnback equivalence: draining the cascade worklist across
// ownership-partitioned shards (per-variable owners, MPSC handoffs,
// per-set locks) must leave exactly the surviving pair sets — and the
// same pairs_erased count — as the serial drain, for every thread count.
// These tests force the partitioned path with parallel_threshold = 1 so
// even fixture-sized cascades cross shards, and they are the TSan CI
// job's workload for the new locking (smoke label).

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/estimator.h"
#include "core/burnback.h"
#include "core/generator.h"
#include "core/wireframe.h"
#include "datagen/synthetic.h"
#include "planner/edgifier.h"
#include "query/parser.h"
#include "testutil/fixtures.h"
#include "util/random.h"

namespace wireframe {
namespace {

/// Snapshot of every edge set of an AG, for equality checks.
std::vector<std::set<uint64_t>> AgPairs(const AnswerGraph& ag) {
  std::vector<std::set<uint64_t>> out(ag.NumEdgeSets());
  for (uint32_t e = 0; e < ag.NumEdgeSets(); ++e) {
    ag.Set(e).ForEachPair(
        [&](NodeId u, NodeId v) { out[e].insert(PackPair(u, v)); });
  }
  return out;
}

/// Runs phase 1 with the given pool width and a threshold-1 burnback so
/// every cascade takes the partitioned drain when threads > 1.
struct GenRun {
  std::vector<std::set<uint64_t>> pairs;
  uint64_t pairs_burned = 0;
};

GenRun GenerateWithThreads(const Database& db, const Catalog& cat,
                           const QueryGraph& q, uint32_t threads) {
  CardinalityEstimator est(cat);
  Edgifier edgifier(q, est);
  auto plan = edgifier.PlanEdgeOrder();
  EXPECT_TRUE(plan.ok());
  AgGenerator gen(db, cat);
  GeneratorOptions options;
  options.burnback_parallel_threshold = 1;
  ThreadPool pool(threads);
  options.pool = threads > 1 ? &pool : nullptr;
  auto result = gen.Generate(q, *plan, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  GenRun run;
  if (result.ok()) {
    run.pairs = AgPairs(*result->ag);
    run.pairs_burned = result->pairs_burned;
  }
  return run;
}

void ExpectThreadCountInvariant(const Database& db, const Catalog& cat,
                                const QueryGraph& q, const char* what) {
  const GenRun serial = GenerateWithThreads(db, cat, q, 1);
  for (uint32_t threads : {2u, 4u}) {
    const GenRun parallel = GenerateWithThreads(db, cat, q, threads);
    ASSERT_EQ(parallel.pairs.size(), serial.pairs.size()) << what;
    for (size_t e = 0; e < serial.pairs.size(); ++e) {
      EXPECT_EQ(parallel.pairs[e], serial.pairs[e])
          << what << " edge set " << e << " threads " << threads;
    }
    EXPECT_EQ(parallel.pairs_burned, serial.pairs_burned)
        << what << " threads " << threads;
  }
}

using BurnbackParallelFig1Test = testutil::Fig1Fixture;
using BurnbackParallelFig4Test = testutil::Fig4Fixture;

TEST_F(BurnbackParallelFig1Test, Fig1SurvivorsAgreeAcrossThreadCounts) {
  ExpectThreadCountInvariant(db_, cat_, query(), "fig1");
}

TEST_F(BurnbackParallelFig4Test, Fig4SurvivorsAgreeAcrossThreadCounts) {
  ExpectThreadCountInvariant(db_, cat_, query(), "fig4");
}

TEST(BurnbackParallelTest, RandomInstancesAgreeAcrossThreadCounts) {
  Rng rng(20260731);
  for (int trial = 0; trial < 8; ++trial) {
    Database db = MakeRandomGraph(40, 3, 420, 9100 + trial);
    Catalog cat = Catalog::Build(db.store());
    QueryGraph q = MakeRandomQuery(rng, 2 + rng.Uniform(4), 5, 3);
    ExpectThreadCountInvariant(db, cat, q, "random");
  }
}

TEST(BurnbackParallelTest, DenseSquareAgreesAcrossThreadCounts) {
  Database db = MakeRandomGraph(80, 3, 6000, 777);
  Catalog cat = Catalog::Build(db.store());
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?a . }", db);
  ASSERT_TRUE(q.ok());
  ExpectThreadCountInvariant(db, cat, *q, "dense-square");
}

// Chain blowup with heavy noise: the lookahead is off here, so the noise
// branches enter the AG and burn back in bulk — big seed worklists that
// genuinely cross the default threshold too.
TEST(BurnbackParallelTest, NoisyChainAgreesAcrossThreadCounts) {
  Database db = MakeChainBlowupGraph(120, 120, /*noise=*/400);
  Catalog cat = Catalog::Build(db.store());
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", db);
  ASSERT_TRUE(q.ok());
  ExpectThreadCountInvariant(db, cat, *q, "noisy-chain");
}

// Direct Burnback drive (no generator): identical KillNode cascades on
// identically-built AGs, serial vs partitioned drain.
TEST(BurnbackParallelTest, KillNodeMatchesSerialDrain) {
  auto build = [](AnswerGraph* ag) {
    // Three-layer chain with shared endpoints so cascades propagate.
    Rng rng(99);
    for (uint32_t e = 0; e < 3; ++e) {
      for (int k = 0; k < 40; ++k) {
        const NodeId u = static_cast<NodeId>(rng.Uniform(6) + 10 * e);
        const NodeId v = static_cast<NodeId>(rng.Uniform(6) + 10 * (e + 1));
        ag->Set(e).Add(u, v);
      }
      ag->MarkMaterialized(e);
    }
  };
  auto q = []() {
    QueryGraph q;
    q.AddVar("v0");
    q.AddVar("v1");
    q.AddVar("v2");
    q.AddVar("v3");
    q.AddEdge(0, 0, 1);
    q.AddEdge(1, 1, 2);
    q.AddEdge(2, 2, 3);
    return q;
  }();

  AnswerGraph serial_ag(q);
  build(&serial_ag);
  Burnback serial_bb(&serial_ag);
  const uint64_t serial_erased = serial_bb.KillNode(1, 10);
  EXPECT_EQ(serial_bb.handoffs(), 0u);

  for (uint32_t threads : {2u, 4u}) {
    AnswerGraph parallel_ag(q);
    build(&parallel_ag);
    ThreadPool pool(threads);
    BurnbackOptions options;
    options.pool = &pool;
    options.parallel_threshold = 1;
    Burnback parallel_bb(&parallel_ag, options);
    const uint64_t parallel_erased = parallel_bb.KillNode(1, 10);
    EXPECT_EQ(parallel_erased, serial_erased) << "threads " << threads;
    EXPECT_EQ(AgPairs(parallel_ag), AgPairs(serial_ag))
        << "threads " << threads;
    EXPECT_GE(parallel_bb.max_cascade_depth(), 1u);
  }
}

// The whole-engine path with a shared pool: embeddings and AG must be
// unaffected by where the burnback drains.
TEST(BurnbackParallelTest, EngineResultsUnaffectedByParallelBurnback) {
  Database db = MakeChainBlowupGraph(100, 100, /*noise=*/300);
  Catalog cat = Catalog::Build(db.store());
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", db);
  ASSERT_TRUE(q.ok());

  auto run = [&](uint32_t threads) {
    WireframeOptions wf_options;
    wf_options.lookahead = false;  // keep the burnback load in place
    WireframeEngine engine(wf_options);
    CollectingSink sink;
    EngineOptions options;
    options.threads = threads;
    auto detail = engine.RunDetailed(db, cat, *q, options, &sink);
    EXPECT_TRUE(detail.ok()) << detail.status().ToString();
    std::set<std::vector<NodeId>> rows(sink.rows().begin(),
                                       sink.rows().end());
    return std::make_pair(rows, detail.ok() ? detail->stats.ag_pairs : 0);
  };
  const auto serial = run(1);
  for (uint32_t threads : {2u, 4u}) {
    const auto parallel = run(threads);
    EXPECT_EQ(parallel.first, serial.first) << "threads " << threads;
    EXPECT_EQ(parallel.second, serial.second) << "threads " << threads;
  }
}

}  // namespace
}  // namespace wireframe
