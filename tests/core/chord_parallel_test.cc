// Chord-parallel equivalence: materializing chords sharded over endpoint
// candidates (like regular edge extension) must produce exactly the chord
// sets, |AG|, and embeddings of the serial path, for every thread count.

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/wireframe.h"
#include "datagen/synthetic.h"
#include "query/parser.h"
#include "query/shape.h"
#include "testutil/fixtures.h"

namespace wireframe {
namespace {

struct ChordRun {
  std::set<std::vector<NodeId>> rows;
  uint64_t ag_pairs = 0;
  uint64_t chord_pairs = 0;
  bool cyclic = false;
};

ChordRun RunWf(const Database& db, const Catalog& cat, const QueryGraph& q,
               uint32_t threads) {
  WireframeEngine engine;
  CollectingSink sink;
  EngineOptions options;
  options.threads = threads;
  auto detail = engine.RunDetailed(db, cat, q, options, &sink);
  EXPECT_TRUE(detail.ok()) << detail.status().ToString();
  ChordRun run;
  run.rows = {sink.rows().begin(), sink.rows().end()};
  if (detail.ok()) {
    run.ag_pairs = detail->stats.ag_pairs;
    run.chord_pairs = detail->chord_pairs;
    run.cyclic = detail->cyclic;
  }
  return run;
}

using ChordParallelFig4Test = testutil::Fig4Fixture;

TEST_F(ChordParallelFig4Test, Fig4ChordAgreesAcrossThreadCounts) {
  const ChordRun serial = RunWf(db_, cat_, query(), 1);
  EXPECT_TRUE(serial.cyclic);
  for (uint32_t threads : {2u, 4u}) {
    const ChordRun parallel = RunWf(db_, cat_, query(), threads);
    EXPECT_EQ(parallel.rows, serial.rows) << "threads=" << threads;
    EXPECT_EQ(parallel.ag_pairs, serial.ag_pairs);
    EXPECT_EQ(parallel.chord_pairs, serial.chord_pairs);
  }
}

// A 4-cycle over a dense random graph: the chord's first-triangle
// frontier spans many morsels, so real cross-thread sharding (not the
// inline fallback) is exercised, including the intersection pass.
TEST(ChordParallelTest, DenseSquareSpansManyMorsels) {
  Database db = MakeRandomGraph(80, 3, 6000, 777);
  Catalog cat = Catalog::Build(db.store());
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?a . }", db);
  ASSERT_TRUE(q.ok());
  ASSERT_FALSE(IsAcyclic(*q));

  const ChordRun serial = RunWf(db, cat, *q, 1);
  EXPECT_GT(serial.chord_pairs, 0u) << "the square must materialize a chord";
  for (uint32_t threads : {2u, 4u}) {
    const ChordRun parallel = RunWf(db, cat, *q, threads);
    EXPECT_EQ(parallel.rows, serial.rows) << "threads=" << threads;
    EXPECT_EQ(parallel.ag_pairs, serial.ag_pairs) << "threads=" << threads;
    EXPECT_EQ(parallel.chord_pairs, serial.chord_pairs)
        << "threads=" << threads;
  }
}

// Randomized cyclic instances: chord contents must be thread-count
// invariant on every shape the triangulator produces.
TEST(ChordParallelTest, RandomCyclicInstancesAgree) {
  Rng rng(424242);
  int cyclic_seen = 0;
  for (int trial = 0; trial < 12 || cyclic_seen < 3; ++trial) {
    ASSERT_LT(trial, 40) << "random workload failed to produce cycles";
    Database db = MakeRandomGraph(40, 3, 800, 11000 + trial);
    Catalog cat = Catalog::Build(db.store());
    QueryGraph q = MakeRandomQuery(rng, 3 + rng.Uniform(3), 5, 3);
    if (IsAcyclic(q)) continue;
    ++cyclic_seen;

    const ChordRun serial = RunWf(db, cat, q, 1);
    for (uint32_t threads : {2u, 4u}) {
      const ChordRun parallel = RunWf(db, cat, q, threads);
      EXPECT_EQ(parallel.rows, serial.rows)
          << "trial " << trial << " threads " << threads;
      EXPECT_EQ(parallel.ag_pairs, serial.ag_pairs)
          << "trial " << trial << " threads " << threads;
      EXPECT_EQ(parallel.chord_pairs, serial.chord_pairs)
          << "trial " << trial << " threads " << threads;
    }
  }
}

// An expired deadline inside chord materialization must surface as
// TimedOut on the amortized probe, serial and parallel alike.
TEST(ChordParallelTest, ChordMaterializationHonorsDeadline) {
  Database db = MakeRandomGraph(80, 3, 6000, 778);
  Catalog cat = Catalog::Build(db.store());
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?a . }", db);
  ASSERT_TRUE(q.ok());
  for (uint32_t threads : {1u, 4u}) {
    WireframeEngine engine;
    CountingSink sink;
    EngineOptions options;
    options.threads = threads;
    options.deadline = Deadline::AlreadyExpired();
    auto stats = engine.Run(db, cat, *q, options, &sink);
    ASSERT_FALSE(stats.ok());
    EXPECT_TRUE(stats.status().IsTimedOut()) << stats.status().ToString();
  }
}

}  // namespace
}  // namespace wireframe
