#include "core/defactorizer.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "query/templates.h"

namespace wireframe {
namespace {

// Builds the Fig. 1 ideal AG by hand: A: {1,2,3}->5, B: 5->9, C: 9->{12..15}.
struct ChainFixture {
  QueryGraph q = ChainTemplate(3).Instantiate({0, 1, 2});
  AnswerGraph ag{q};

  ChainFixture() {
    for (NodeId w : {1, 2, 3}) ag.Set(0).Add(w, 5);
    ag.Set(1).Add(5, 9);
    for (NodeId z : {12, 13, 14, 15}) ag.Set(2).Add(9, z);
    for (uint32_t e = 0; e < 3; ++e) ag.MarkMaterialized(e);
  }
};

EmbeddingPlan PlanOrder(std::vector<uint32_t> order) {
  EmbeddingPlan plan;
  plan.join_order = std::move(order);
  return plan;
}

TEST(DefactorizerTest, EnumeratesAllEmbeddings) {
  ChainFixture f;
  Defactorizer defac(f.q, f.ag);
  CollectingSink sink;
  auto n = defac.Emit(PlanOrder({0, 1, 2}), &sink, DefactorizerOptions{});
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(n.value().emitted, 12u);
  EXPECT_EQ(sink.rows().size(), 12u);
  // Every row binds all four vars.
  for (const auto& row : sink.rows()) {
    ASSERT_EQ(row.size(), 4u);
    for (NodeId v : row) EXPECT_NE(v, kInvalidNode);
  }
}

TEST(DefactorizerTest, JoinOrderIsImmaterialOverIdealAg) {
  ChainFixture f;
  Defactorizer defac(f.q, f.ag);
  std::set<std::vector<NodeId>> reference;
  {
    CollectingSink sink;
    ASSERT_TRUE(
        defac.Emit(PlanOrder({0, 1, 2}), &sink, DefactorizerOptions{}).ok());
    reference.insert(sink.rows().begin(), sink.rows().end());
  }
  for (const std::vector<uint32_t>& order :
       {std::vector<uint32_t>{2, 1, 0}, {1, 0, 2}, {1, 2, 0}, {2, 1, 0}}) {
    CollectingSink sink;
    ASSERT_TRUE(defac.Emit(PlanOrder(order), &sink, DefactorizerOptions{})
                    .ok());
    std::set<std::vector<NodeId>> got(sink.rows().begin(),
                                      sink.rows().end());
    EXPECT_EQ(got, reference);
  }
}

TEST(DefactorizerTest, BothEndpointsBoundFilters) {
  // 2-cycle: x -0-> y and x -1-> y; second edge acts as a filter.
  QueryGraph q;
  VarId x = q.AddVar("x"), y = q.AddVar("y");
  q.AddEdge(x, 0, y);
  q.AddEdge(x, 1, y);
  AnswerGraph ag(q);
  ag.Set(0).Add(1, 10);
  ag.Set(0).Add(2, 20);
  ag.Set(1).Add(1, 10);  // only (1,10) survives the second pattern
  ag.MarkMaterialized(0);
  ag.MarkMaterialized(1);
  Defactorizer defac(q, ag);
  CollectingSink sink;
  auto n = defac.Emit(PlanOrder({0, 1}), &sink, DefactorizerOptions{});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value().emitted, 1u);
  EXPECT_EQ(sink.rows()[0], (std::vector<NodeId>{1, 10}));
}

TEST(DefactorizerTest, BackwardExtension) {
  // Plan visits edge 1 first, then edge 0 must extend backwards into v0.
  ChainFixture f;
  Defactorizer defac(f.q, f.ag);
  CountingSink sink;
  auto n = defac.Emit(PlanOrder({1, 0, 2}), &sink, DefactorizerOptions{});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value().emitted, 12u);
}

TEST(DefactorizerTest, EmptyAgYieldsNothing) {
  QueryGraph q = ChainTemplate(2).Instantiate({0, 1});
  AnswerGraph ag(q);
  ag.MarkMaterialized(0);
  ag.MarkMaterialized(1);
  Defactorizer defac(q, ag);
  CountingSink sink;
  auto n = defac.Emit(PlanOrder({0, 1}), &sink, DefactorizerOptions{});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value().emitted, 0u);
}

TEST(DefactorizerTest, SinkCanStopEarly) {
  ChainFixture f;
  Defactorizer defac(f.q, f.ag);
  LimitSink sink(5);
  auto n = defac.Emit(PlanOrder({0, 1, 2}), &sink, DefactorizerOptions{});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(sink.count(), 5u);
  EXPECT_LE(n.value().emitted, 6u);
}

TEST(DefactorizerTest, ExpiredDeadlineTimesOut) {
  ChainFixture f;
  Defactorizer defac(f.q, f.ag);
  CountingSink sink;
  DefactorizerOptions options;
  options.deadline = Deadline::AlreadyExpired();
  // The deadline is checked on a stride; tiny outputs may finish first,
  // so force many tuples through a bigger AG.
  for (NodeId w = 100; w < 3000; ++w) f.ag.Set(0).Add(w, 5);
  auto n = defac.Emit(PlanOrder({0, 1, 2}), &sink, options);
  ASSERT_FALSE(n.ok());
  EXPECT_TRUE(n.status().IsTimedOut());
}

TEST(DefactorizerTest, TombstonedPairsAreSkipped) {
  ChainFixture f;
  f.ag.Set(2).Erase(9, 15);
  Defactorizer defac(f.q, f.ag);
  CountingSink sink;
  auto n = defac.Emit(PlanOrder({0, 1, 2}), &sink, DefactorizerOptions{});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value().emitted, 9u);  // 3 * 1 * 3
}

}  // namespace
}  // namespace wireframe
