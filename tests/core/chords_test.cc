#include "core/chords.h"

#include <gtest/gtest.h>

#include "catalog/estimator.h"
#include "core/generator.h"
#include "datagen/figures.h"
#include "planner/edgifier.h"
#include "query/parser.h"
#include "query/shape.h"
#include "testutil/fixtures.h"

namespace wireframe {
namespace {

class ChordsFig4Test : public testutil::Fig4Fixture {
 protected:
  GeneratorResult Generate(bool triangulate, bool edge_burnback) {
    CardinalityEstimator est(cat_);
    Edgifier edgifier(query(), est);
    auto plan = edgifier.PlanEdgeOrder();
    EXPECT_TRUE(plan.ok());
    if (triangulate) {
      Triangulator tri(query(), est);
      auto chords = tri.Triangulate(AnalyzeShape(query()));
      EXPECT_TRUE(chords.ok());
      plan->chords = chords->chords;
      plan->base_triangles = chords->base_triangles;
      plan->base_triangle_closing_edge = chords->base_triangle_closing_edge;
    }
    GeneratorOptions options;
    options.triangulate = triangulate;
    options.edge_burnback = edge_burnback;
    AgGenerator gen(db_, cat_);
    auto result = gen.Generate(query(), *plan, options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }
};

TEST_F(ChordsFig4Test, NodeBurnbackAloneLeavesSpuriousEdges) {
  GeneratorResult r = Generate(/*triangulate=*/false,
                               /*edge_burnback=*/false);
  EXPECT_EQ(r.ag->TotalQueryEdgePairs(), kFig4NodeBurnbackAgEdges);
  EXPECT_FALSE(r.used_chords);
}

TEST_F(ChordsFig4Test, ChordsWithoutEdgeBurnbackStillNonIdeal) {
  // The paper's experimental configuration: chordified, node burnback
  // only. Node sets are minimal but the two spurious D edges survive.
  GeneratorResult r = Generate(/*triangulate=*/true,
                               /*edge_burnback=*/false);
  EXPECT_TRUE(r.used_chords);
  EXPECT_EQ(r.ag->TotalQueryEdgePairs(), kFig4NodeBurnbackAgEdges);
}

TEST_F(ChordsFig4Test, EdgeBurnbackReachesIdealAg) {
  GeneratorResult r = Generate(/*triangulate=*/true,
                               /*edge_burnback=*/true);
  EXPECT_EQ(r.ag->TotalQueryEdgePairs(), kFig4IdealAgEdges);
  // The spurious pairs named in the paper are gone.
  auto n = [&](const std::string& name) { return *db_.NodeOf(name); };
  // Query edge 3 is ?y -D-> ?z.
  EXPECT_FALSE(r.ag->Set(3).Contains(n("n1"), n("n6")));
  EXPECT_FALSE(r.ag->Set(3).Contains(n("n5"), n("n2")));
  EXPECT_TRUE(r.ag->Set(3).Contains(n("n1"), n("n2")));
  EXPECT_TRUE(r.ag->Set(3).Contains(n("n5"), n("n6")));
}

TEST_F(ChordsFig4Test, ChordPairsMatchSurvivingCorners) {
  GeneratorResult r = Generate(/*triangulate=*/true,
                               /*edge_burnback=*/true);
  // One chord slot exists beyond the 4 query edges.
  ASSERT_EQ(r.ag->NumEdgeSets(), 5u);
  EXPECT_GT(r.ag->Set(4).Size(), 0u);
  EXPECT_LE(r.ag->Set(4).Size(), 2u);
}

TEST_F(ChordsFig4Test, EmbeddingsUnaffectedByMode) {
  // All three configurations must admit exactly the two embeddings; this
  // is checked end-to-end in wireframe_test; here we check edge sets stay
  // supersets of the ideal AG.
  GeneratorResult loose = Generate(false, false);
  GeneratorResult ideal = Generate(true, true);
  for (uint32_t e = 0; e < 4; ++e) {
    ideal.ag->Set(e).ForEachPair([&](NodeId u, NodeId v) {
      EXPECT_TRUE(loose.ag->Set(e).Contains(u, v))
          << "ideal AG must be a subset of the node-burnback AG";
    });
  }
}

TEST(ChordsTriangleTest, TriangleQueryEdgeBurnbackCullsSpuriousEdges) {
  // Triangle query over a graph where node burnback keeps a spurious
  // edge: a -A-> b, b -B-> c, c -C-> a (two valid triangles), plus an
  // A-edge between corners of *different* triangles.
  DatabaseBuilder builder;
  builder.Add("a1", "A", "b1");
  builder.Add("b1", "B", "c1");
  builder.Add("c1", "C", "a1");
  builder.Add("a2", "A", "b2");
  builder.Add("b2", "B", "c2");
  builder.Add("c2", "C", "a2");
  builder.Add("a1", "A", "b2");  // spurious: crosses the two triangles
  Database db = std::move(builder).Build();
  Catalog cat = Catalog::Build(db.store());
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?x A ?y . ?y B ?z . ?z C ?x . }", db);
  ASSERT_TRUE(q.ok());

  CardinalityEstimator est(cat);
  Edgifier edgifier(*q, est);
  auto plan = edgifier.PlanEdgeOrder();
  ASSERT_TRUE(plan.ok());
  Triangulator tri(*q, est);
  auto chords = tri.Triangulate(AnalyzeShape(*q));
  ASSERT_TRUE(chords.ok());
  EXPECT_TRUE(chords->chords.empty());  // 3-cycle: no chord needed
  ASSERT_EQ(chords->base_triangles.size(), 1u);
  plan->base_triangles = chords->base_triangles;
  plan->base_triangle_closing_edge = chords->base_triangle_closing_edge;

  AgGenerator gen(db, cat);
  GeneratorOptions options;
  options.triangulate = true;
  options.edge_burnback = false;
  auto loose = gen.Generate(*q, *plan, options);
  ASSERT_TRUE(loose.ok());
  EXPECT_EQ(loose->ag->TotalQueryEdgePairs(), 7u);  // spurious survives

  options.edge_burnback = true;
  auto ideal = gen.Generate(*q, *plan, options);
  ASSERT_TRUE(ideal.ok());
  EXPECT_EQ(ideal->ag->TotalQueryEdgePairs(), 6u);
  auto n = [&](const std::string& s) { return *db.NodeOf(s); };
  EXPECT_FALSE(ideal->ag->Set(0).Contains(n("a1"), n("b2")));
}

}  // namespace
}  // namespace wireframe
