#include "core/bushy_executor.h"

#include <set>

#include <gtest/gtest.h>

#include "core/generator.h"
#include "core/wireframe.h"
#include "datagen/figures.h"
#include "datagen/synthetic.h"
#include "planner/edgifier.h"
#include "query/parser.h"
#include "query/shape.h"
#include "testutil/fixtures.h"

namespace wireframe {
namespace {

/// Generates the AG for a query (paper config) and returns it with stats.
std::unique_ptr<AnswerGraph> BuildAg(const Database& db, const Catalog& cat,
                                     const QueryGraph& q) {
  CardinalityEstimator est(cat);
  Edgifier edgifier(q, est);
  auto plan = edgifier.PlanEdgeOrder();
  EXPECT_TRUE(plan.ok());
  QueryShape shape = AnalyzeShape(q);
  if (!shape.acyclic) {
    Triangulator tri(q, est);
    auto chords = tri.Triangulate(shape);
    EXPECT_TRUE(chords.ok());
    plan->chords = std::move(chords->chords);
    plan->base_triangles = std::move(chords->base_triangles);
    plan->base_triangle_closing_edge =
        std::move(chords->base_triangle_closing_edge);
  }
  AgGenerator gen(db, cat);
  auto result = gen.Generate(q, *plan, GeneratorOptions{});
  EXPECT_TRUE(result.ok());
  return std::move(result->ag);
}

std::set<std::vector<NodeId>> RunBushy(const Database& db, const Catalog& cat,
                                       const QueryGraph& q,
                                       DefactorizerStats* stats = nullptr) {
  auto ag = BuildAg(db, cat, q);
  BushyPlanner planner(q);
  auto plan = planner.Plan(ag->Stats());
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  BushyExecutor executor(q, *ag);
  CollectingSink sink;
  auto result = executor.Emit(*plan, &sink, BushyExecutorOptions{});
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (stats && result.ok()) *stats = result.value();
  return {sink.rows().begin(), sink.rows().end()};
}

std::set<std::vector<NodeId>> RunPipelinedWf(const Database& db,
                                             const Catalog& cat,
                                             const QueryGraph& q) {
  WireframeEngine engine;
  CollectingSink sink;
  auto stats = engine.Run(db, cat, q, EngineOptions{}, &sink);
  EXPECT_TRUE(stats.ok());
  return {sink.rows().begin(), sink.rows().end()};
}

using BushyExecutorFig1Test = testutil::Fig1Fixture;
using BushyExecutorFig4Test = testutil::Fig4Fixture;

TEST_F(BushyExecutorFig1Test, ChainMatchesPipelined) {
  DefactorizerStats stats;
  auto bushy = RunBushy(db_, cat_, query(), &stats);
  EXPECT_EQ(bushy.size(), kFig1Embeddings);
  EXPECT_EQ(bushy, RunPipelinedWf(db_, cat_, query()));
  EXPECT_EQ(stats.emitted, kFig1Embeddings);
}

TEST_F(BushyExecutorFig4Test, CyclicMatchesPipelined) {
  auto bushy = RunBushy(db_, cat_, query());
  EXPECT_EQ(bushy.size(), kFig4Embeddings);
  EXPECT_EQ(bushy, RunPipelinedWf(db_, cat_, query()));
}

// Property: bushy execution computes exactly the pipelined result on
// random graphs and queries of both shapes.
TEST(BushyExecutorTest, MatchesPipelinedOnRandomInstances) {
  Rng rng(8080);
  int done = 0;
  for (int trial = 0; trial < 40 && done < 25; ++trial) {
    QueryGraph q = MakeRandomQuery(rng, 2 + rng.Uniform(4), 5, 3);
    Database db = MakeRandomGraph(22, 3, 150, 7000 + trial);
    Catalog cat = Catalog::Build(db.store());
    ++done;
    EXPECT_EQ(RunBushy(db, cat, q), RunPipelinedWf(db, cat, q))
        << "trial " << trial;
  }
  EXPECT_GE(done, 25);
}

TEST(BushyExecutorTest, MemoryBudgetEnforced) {
  Database db = MakeChainBlowupGraph(60, 60, 0);
  Catalog cat = Catalog::Build(db.store());
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", db);
  ASSERT_TRUE(q.ok());
  auto ag = BuildAg(db, cat, *q);
  BushyPlanner planner(*q);
  auto plan = planner.Plan(ag->Stats());
  ASSERT_TRUE(plan.ok());
  BushyExecutor executor(*q, *ag);
  CountingSink sink;
  BushyExecutorOptions options;
  options.max_cells = 64;  // far below the 3600-embedding output
  auto result = executor.Emit(*plan, &sink, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(BushyExecutorTest, DeadlineEnforced) {
  Database db = MakeChainBlowupGraph(60, 60, 0);
  Catalog cat = Catalog::Build(db.store());
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", db);
  ASSERT_TRUE(q.ok());
  auto ag = BuildAg(db, cat, *q);
  BushyPlanner planner(*q);
  auto plan = planner.Plan(ag->Stats());
  ASSERT_TRUE(plan.ok());
  BushyExecutor executor(*q, *ag);
  CountingSink sink;
  BushyExecutorOptions options;
  options.deadline = Deadline::AlreadyExpired();
  auto result = executor.Emit(*plan, &sink, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTimedOut());
}

}  // namespace
}  // namespace wireframe
