#include "core/burnback.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "query/templates.h"
#include "util/random.h"

namespace wireframe {
namespace {

// Naive arc-consistency oracle: repeatedly delete any pair with a dead
// endpoint until quiescent. Returns the number of pairs deleted.
uint64_t OracleFixpoint(AnswerGraph* ag) {
  uint64_t deleted = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t e = 0; e < ag->NumEdgeSets(); ++e) {
      if (!ag->IsMaterialized(e)) continue;
      std::vector<std::pair<NodeId, NodeId>> doomed;
      ag->Set(e).ForEachPair([&](NodeId u, NodeId v) {
        if (!ag->IsAlive(ag->SrcVar(e), u) ||
            !ag->IsAlive(ag->DstVar(e), v)) {
          doomed.emplace_back(u, v);
        }
      });
      for (auto [u, v] : doomed) {
        ag->Set(e).Erase(u, v);
        ++deleted;
        changed = true;
      }
    }
  }
  return deleted;
}

QueryGraph RandomConnectedQuery(Rng& rng) {
  const uint32_t num_edges = 2 + static_cast<uint32_t>(rng.Uniform(4));
  QueryGraph q;
  q.AddVar("v0");
  q.AddVar("v1");
  q.AddEdge(0, 0, 1);
  for (uint32_t e = 1; e < num_edges; ++e) {
    VarId a = static_cast<VarId>(rng.Uniform(q.NumVars()));
    VarId b;
    if (rng.Bernoulli(0.5) && q.NumVars() < 5) {
      b = q.AddVar("v" + std::to_string(q.NumVars()));
    } else {
      b = static_cast<VarId>(rng.Uniform(q.NumVars()));
      if (b == a) b = (b + 1) % q.NumVars();
    }
    q.AddEdge(a, e, b);
  }
  return q;
}

TEST(BurnbackTest, KillNodeErasesIncidentPairs) {
  QueryGraph q = ChainTemplate(2).Instantiate({0, 1});
  AnswerGraph ag(q);
  ag.Set(0).Add(1, 10);
  ag.Set(0).Add(2, 10);
  ag.Set(0).Add(3, 11);
  ag.MarkMaterialized(0);
  Burnback bb(&ag);
  uint64_t erased = bb.KillNode(q.FindVar("v1"), 10);
  EXPECT_EQ(erased, 2u);
  EXPECT_EQ(ag.Set(0).Size(), 1u);
  EXPECT_TRUE(ag.Set(0).Contains(3, 11));
}

TEST(BurnbackTest, CascadeAcrossChain) {
  // v0 -e0-> v1 -e1-> v2; kill the only v2 node; everything unravels.
  QueryGraph q = ChainTemplate(2).Instantiate({0, 1});
  AnswerGraph ag(q);
  ag.Set(0).Add(1, 10);
  ag.Set(0).Add(2, 10);
  ag.MarkMaterialized(0);
  ag.Set(1).Add(10, 20);
  ag.MarkMaterialized(1);
  Burnback bb(&ag);
  uint64_t erased = bb.KillNode(q.FindVar("v2"), 20);
  EXPECT_EQ(erased, 3u);
  EXPECT_EQ(ag.Set(0).Size(), 0u);
  EXPECT_EQ(ag.Set(1).Size(), 0u);
}

TEST(BurnbackTest, CascadeStopsWhereSupported) {
  QueryGraph q = ChainTemplate(2).Instantiate({0, 1});
  AnswerGraph ag(q);
  ag.Set(0).Add(1, 10);
  ag.MarkMaterialized(0);
  ag.Set(1).Add(10, 20);
  ag.Set(1).Add(10, 21);
  ag.MarkMaterialized(1);
  Burnback bb(&ag);
  // Killing one of v2's two nodes leaves v1=10 supported.
  bb.KillNode(q.FindVar("v2"), 21);
  EXPECT_EQ(ag.Set(1).Size(), 1u);
  EXPECT_EQ(ag.Set(0).Size(), 1u);
  EXPECT_TRUE(ag.IsAlive(q.FindVar("v1"), 10));
}

TEST(BurnbackTest, ErasePairCascades) {
  QueryGraph q = ChainTemplate(2).Instantiate({0, 1});
  AnswerGraph ag(q);
  ag.Set(0).Add(1, 10);
  ag.MarkMaterialized(0);
  ag.Set(1).Add(10, 20);
  ag.MarkMaterialized(1);
  Burnback bb(&ag);
  uint64_t erased = bb.ErasePair(1, 10, 20);
  EXPECT_EQ(erased, 2u);  // the pair itself + cascaded (1,10)
  EXPECT_EQ(ag.Set(0).Size(), 0u);
}

TEST(BurnbackTest, EraseMissingPairIsNoop) {
  QueryGraph q = ChainTemplate(1).Instantiate({0});
  AnswerGraph ag(q);
  ag.Set(0).Add(1, 2);
  ag.MarkMaterialized(0);
  Burnback bb(&ag);
  EXPECT_EQ(bb.ErasePair(0, 5, 6), 0u);
  EXPECT_EQ(ag.Set(0).Size(), 1u);
}

TEST(BurnbackTest, PruneAfterExtensionRemovesFailedCandidates) {
  // Star: x -e0-> a, x -e1-> b. After e0, x has {1,2}; e1 extends only 1.
  QueryGraph q = StarTemplate(2).Instantiate({0, 1});
  AnswerGraph ag(q);
  VarId x = q.FindVar("x");
  ag.Set(0).Add(1, 10);
  ag.Set(0).Add(2, 11);
  ag.MarkMaterialized(0);
  ag.Set(1).Add(1, 20);
  ag.MarkMaterialized(1);
  Burnback bb(&ag);
  uint64_t erased = bb.PruneAfterExtension(1, /*src_was_touched=*/true,
                                           /*dst_was_touched=*/false);
  EXPECT_EQ(erased, 1u);  // (2,11) burned from e0
  EXPECT_FALSE(ag.IsAlive(x, 2));
  EXPECT_TRUE(ag.IsAlive(x, 1));
}

// Property: mimicking the generator's interleaved extend-then-prune flow
// (new pairs' endpoints on already-touched variables are drawn from live
// candidates), the burnback fixpoint is exactly arc consistency — the
// naive oracle finds nothing left to delete.
TEST(BurnbackTest, InterleavedPruningReachesArcConsistency) {
  Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    QueryGraph q = RandomConnectedQuery(rng);
    AnswerGraph ag(q);
    Burnback bb(&ag);
    for (uint32_t e = 0; e < q.NumEdges(); ++e) {
      const VarId sv = q.Edge(e).src, dv = q.Edge(e).dst;
      const bool src_touched = ag.IsTouched(sv);
      const bool dst_touched = ag.IsTouched(dv);
      std::vector<NodeId> src_pool, dst_pool;
      if (src_touched) {
        ag.ForEachCandidate(sv, [&](NodeId c) { src_pool.push_back(c); });
      }
      if (dst_touched) {
        ag.ForEachCandidate(dv, [&](NodeId c) { dst_pool.push_back(c); });
      }
      // A touched variable whose candidate set is already empty admits no
      // further pairs (the generator would find no extensions either).
      const bool extendable = (!src_touched || !src_pool.empty()) &&
                              (!dst_touched || !dst_pool.empty());
      const uint32_t pairs =
          extendable ? 1 + static_cast<uint32_t>(rng.Uniform(10)) : 0;
      for (uint32_t k = 0; k < pairs; ++k) {
        NodeId u = src_touched ? src_pool[rng.Uniform(src_pool.size())]
                               : static_cast<NodeId>(rng.Uniform(6));
        NodeId v = dst_touched ? dst_pool[rng.Uniform(dst_pool.size())]
                               : static_cast<NodeId>(100 + rng.Uniform(6));
        ag.Set(e).Add(u, v);
      }
      ag.MarkMaterialized(e);
      bb.PruneAfterExtension(e, src_touched, dst_touched);
    }
    EXPECT_EQ(OracleFixpoint(&ag), 0u)
        << "trial " << trial << ": burnback missed deletions";
  }
}

// Oracle equivalence with single-kill entry points: killing the same node
// through Burnback and through the oracle path gives identical sets.
TEST(BurnbackTest, KillMatchesOracleDeletion) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    QueryGraph q = ChainTemplate(3).Instantiate({0, 1, 2});
    AnswerGraph fast(q), slow(q);
    for (uint32_t e = 0; e < 3; ++e) {
      for (int k = 0; k < 8; ++k) {
        // Chain var domains overlap so cascades actually propagate.
        NodeId u = static_cast<NodeId>(rng.Uniform(4) + 10 * e);
        NodeId v = static_cast<NodeId>(rng.Uniform(4) + 10 * (e + 1));
        fast.Set(e).Add(u, v);
        slow.Set(e).Add(u, v);
      }
      fast.MarkMaterialized(e);
      slow.MarkMaterialized(e);
    }
    // Settle both to a consistent state first.
    Burnback bb(&fast);
    for (uint32_t e = 0; e < 3; ++e) bb.PruneAfterExtension(e, true, true);
    OracleFixpoint(&slow);
    for (uint32_t e = 0; e < 3; ++e) {
      ASSERT_EQ(fast.Set(e).Size(), slow.Set(e).Size()) << "trial " << trial;
    }

    // Now kill one surviving node in both and re-compare.
    VarId v1 = q.FindVar("v1");
    NodeId victim = kInvalidNode;
    if (fast.IsTouched(v1)) {
      fast.ForEachCandidate(v1, [&](NodeId c) {
        if (victim == kInvalidNode) victim = c;
      });
    }
    if (victim == kInvalidNode) continue;
    bb.KillNode(v1, victim);
    // Oracle version: delete the victim's pairs manually, then fixpoint.
    for (uint32_t e = 0; e < 3; ++e) {
      std::vector<std::pair<NodeId, NodeId>> doomed;
      slow.Set(e).ForEachPair([&](NodeId u, NodeId v) {
        if ((slow.SrcVar(e) == v1 && u == victim) ||
            (slow.DstVar(e) == v1 && v == victim)) {
          doomed.emplace_back(u, v);
        }
      });
      for (auto [u, v] : doomed) slow.Set(e).Erase(u, v);
    }
    OracleFixpoint(&slow);
    for (uint32_t e = 0; e < 3; ++e) {
      EXPECT_EQ(fast.Set(e).Size(), slow.Set(e).Size()) << "trial " << trial;
      slow.Set(e).ForEachPair([&](NodeId u, NodeId v) {
        EXPECT_TRUE(fast.Set(e).Contains(u, v));
      });
    }
  }
}

}  // namespace
}  // namespace wireframe
