#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/answer_graph.h"

namespace wireframe {
namespace {

TEST(PairSetTest, AddAndContains) {
  PairSet s;
  EXPECT_TRUE(s.Add(1, 2));
  EXPECT_TRUE(s.Contains(1, 2));
  EXPECT_FALSE(s.Contains(2, 1));
  EXPECT_EQ(s.Size(), 1u);
}

TEST(PairSetTest, AddDeduplicates) {
  PairSet s;
  EXPECT_TRUE(s.Add(1, 2));
  EXPECT_FALSE(s.Add(1, 2));
  EXPECT_EQ(s.Size(), 1u);
  EXPECT_EQ(s.SrcCount(1), 1u);
}

TEST(PairSetTest, EraseUpdatesCounts) {
  PairSet s;
  s.Add(1, 2);
  s.Add(1, 3);
  s.Add(4, 2);
  EXPECT_EQ(s.SrcCount(1), 2u);
  EXPECT_EQ(s.DstCount(2), 2u);
  EXPECT_TRUE(s.Erase(1, 2));
  EXPECT_FALSE(s.Erase(1, 2));  // already gone
  EXPECT_EQ(s.Size(), 2u);
  EXPECT_EQ(s.SrcCount(1), 1u);
  EXPECT_EQ(s.DstCount(2), 1u);
  EXPECT_FALSE(s.Contains(1, 2));
}

TEST(PairSetTest, DistinctCounts) {
  PairSet s;
  s.Add(1, 2);
  s.Add(1, 3);
  s.Add(4, 3);
  EXPECT_EQ(s.DistinctSrcCount(), 2u);
  EXPECT_EQ(s.DistinctDstCount(), 2u);
  s.Erase(1, 2);
  s.Erase(1, 3);
  EXPECT_EQ(s.DistinctSrcCount(), 1u);
}

TEST(PairSetTest, ForEachFwdSkipsTombstones) {
  PairSet s;
  s.Add(1, 2);
  s.Add(1, 3);
  s.Add(1, 4);
  s.Erase(1, 3);
  std::vector<NodeId> got;
  s.ForEachFwd(1, [&](NodeId v) { got.push_back(v); });
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<NodeId>{2, 4}));
  s.ForEachFwd(99, [&](NodeId) { FAIL() << "no pairs from 99"; });
}

TEST(PairSetTest, ForEachBwd) {
  PairSet s;
  s.Add(1, 9);
  s.Add(2, 9);
  s.Erase(1, 9);
  std::vector<NodeId> got;
  s.ForEachBwd(9, [&](NodeId u) { got.push_back(u); });
  EXPECT_EQ(got, (std::vector<NodeId>{2}));
}

TEST(PairSetTest, ForEachPairVisitsLiveOnly) {
  PairSet s;
  s.Add(1, 2);
  s.Add(3, 4);
  s.Add(5, 6);
  s.Erase(3, 4);
  std::set<std::pair<NodeId, NodeId>> got;
  s.ForEachPair([&](NodeId u, NodeId v) { got.insert({u, v}); });
  EXPECT_EQ(got, (std::set<std::pair<NodeId, NodeId>>{{1, 2}, {5, 6}}));
}

TEST(PairSetTest, ForEachSrcDst) {
  PairSet s;
  s.Add(1, 2);
  s.Add(1, 3);
  s.Add(4, 3);
  std::set<NodeId> srcs, dsts;
  s.ForEachSrc([&](NodeId u) { srcs.insert(u); });
  s.ForEachDst([&](NodeId v) { dsts.insert(v); });
  EXPECT_EQ(srcs, (std::set<NodeId>{1, 4}));
  EXPECT_EQ(dsts, (std::set<NodeId>{2, 3}));
}

TEST(PairSetTest, EraseDuringFwdIterationIsSafe) {
  PairSet s;
  for (NodeId v = 0; v < 10; ++v) s.Add(7, 100 + v);
  std::vector<NodeId> visited;
  s.ForEachFwd(7, [&](NodeId v) {
    visited.push_back(v);
    s.Erase(7, v);
  });
  EXPECT_EQ(visited.size(), 10u);
  EXPECT_EQ(s.Size(), 0u);
  EXPECT_EQ(s.SrcCount(7), 0u);
}

TEST(PairSetTest, FreshSetIsCompact) {
  PairSet s;
  EXPECT_TRUE(s.IsCompact());
  s.Add(1, 2);
  EXPECT_TRUE(s.IsCompact());  // adds never create tombstones
  s.Erase(1, 2);
  EXPECT_FALSE(s.IsCompact());
}

TEST(PairSetTest, CompactDropsTombstonesAndPreservesContent) {
  PairSet s;
  for (NodeId u = 0; u < 20; ++u) {
    for (NodeId v = 100; v < 110; ++v) s.Add(u, v);
  }
  for (NodeId u = 0; u < 20; u += 2) {
    for (NodeId v = 100; v < 110; ++v) s.Erase(u, v);
  }
  EXPECT_FALSE(s.IsCompact());
  const uint64_t size_before = s.Size();
  s.Compact();
  EXPECT_TRUE(s.IsCompact());
  EXPECT_EQ(s.Size(), size_before);
  // Iteration after compaction sees exactly the live pairs.
  uint64_t seen = 0;
  for (NodeId u = 1; u < 20; u += 2) {
    s.ForEachFwd(u, [&](NodeId v) {
      EXPECT_GE(v, 100u);
      ++seen;
    });
  }
  EXPECT_EQ(seen, size_before);
  // Fully-erased sources disappear from the forward index.
  s.ForEachFwd(0, [&](NodeId) { FAIL() << "source 0 was fully erased"; });
  // Backward direction too.
  uint64_t back = 0;
  for (NodeId v = 100; v < 110; ++v) {
    s.ForEachBwd(v, [&](NodeId u) {
      EXPECT_EQ(u % 2, 1u);
      ++back;
    });
  }
  EXPECT_EQ(back, size_before);
}

TEST(PairSetTest, CompactIsIdempotent) {
  PairSet s;
  s.Add(1, 2);
  s.Add(3, 4);
  s.Erase(3, 4);
  s.Compact();
  s.Compact();
  EXPECT_EQ(s.Size(), 1u);
  EXPECT_TRUE(s.Contains(1, 2));
  EXPECT_EQ(s.DistinctSrcCount(), 1u);
  EXPECT_EQ(s.DistinctDstCount(), 1u);
}

TEST(PairSetShardTest, MergeShardMatchesDirectAdds) {
  // Build the same pair set twice: direct Adds in one stream, and the
  // same stream partitioned into shards merged in order. Everything
  // observable must coincide.
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId u = 0; u < 40; ++u) {
    for (NodeId v = 0; v < 7; ++v) pairs.emplace_back(u, (u + v) % 25);
  }

  PairSet direct;
  for (auto [u, v] : pairs) direct.Add(u, v);

  PairSet merged;
  constexpr size_t kShardSize = 23;  // deliberately not a divisor
  for (size_t begin = 0; begin < pairs.size(); begin += kShardSize) {
    PairSetShard shard;
    const size_t end = std::min(pairs.size(), begin + kShardSize);
    for (size_t i = begin; i < end; ++i) {
      shard.Add(pairs[i].first, pairs[i].second);
    }
    EXPECT_EQ(shard.Size(), end - begin);
    merged.MergeShard(shard);
  }

  ASSERT_EQ(merged.Size(), direct.Size());
  EXPECT_EQ(merged.DistinctSrcCount(), direct.DistinctSrcCount());
  EXPECT_EQ(merged.DistinctDstCount(), direct.DistinctDstCount());
  std::set<std::pair<NodeId, NodeId>> direct_pairs, merged_pairs;
  direct.ForEachPair(
      [&](NodeId u, NodeId v) { direct_pairs.emplace(u, v); });
  merged.ForEachPair(
      [&](NodeId u, NodeId v) { merged_pairs.emplace(u, v); });
  EXPECT_EQ(merged_pairs, direct_pairs);
  for (NodeId u = 0; u < 40; ++u) {
    EXPECT_EQ(merged.SrcCount(u), direct.SrcCount(u)) << "u=" << u;
  }
}

TEST(PairSetShardTest, MergeShardDeduplicatesAcrossShards) {
  PairSet set;
  PairSetShard a, b;
  a.Add(1, 2);
  a.Add(3, 4);
  b.Add(1, 2);  // duplicate of a's pair
  b.Add(5, 6);
  EXPECT_EQ(set.MergeShard(a), 2u);
  EXPECT_EQ(set.MergeShard(b), 1u) << "duplicate must not re-insert";
  EXPECT_EQ(set.Size(), 3u);
  EXPECT_EQ(set.SrcCount(1), 1u);
}

TEST(PairSetShardTest, EmptyShardIsANoOp) {
  PairSet set;
  set.Add(7, 8);
  PairSetShard empty;
  EXPECT_TRUE(empty.Empty());
  EXPECT_EQ(set.MergeShard(empty), 0u);
  EXPECT_EQ(set.Size(), 1u);
}

TEST(PairSetTest, FreezeKeepsEveryObservable) {
  PairSet mutable_set, frozen_set;
  for (NodeId u = 0; u < 30; ++u) {
    for (NodeId v = 0; v < 9; ++v) {
      mutable_set.Add(u, (u * 3 + v) % 40);
      frozen_set.Add(u, (u * 3 + v) % 40);
    }
  }
  // Erase a slice so freezing has tombstones to skip.
  for (NodeId u = 0; u < 30; u += 3) {
    mutable_set.Erase(u, (u * 3) % 40);
    frozen_set.Erase(u, (u * 3) % 40);
  }
  frozen_set.Compact();
  frozen_set.Freeze();
  ASSERT_TRUE(frozen_set.IsFrozen());
  EXPECT_TRUE(frozen_set.IsCompact());

  EXPECT_EQ(frozen_set.Size(), mutable_set.Size());
  EXPECT_EQ(frozen_set.DistinctSrcCount(), mutable_set.DistinctSrcCount());
  EXPECT_EQ(frozen_set.DistinctDstCount(), mutable_set.DistinctDstCount());
  std::set<std::pair<NodeId, NodeId>> mutable_pairs, frozen_pairs;
  mutable_set.ForEachPair(
      [&](NodeId u, NodeId v) { mutable_pairs.emplace(u, v); });
  frozen_set.ForEachPair(
      [&](NodeId u, NodeId v) { frozen_pairs.emplace(u, v); });
  EXPECT_EQ(frozen_pairs, mutable_pairs);
  for (NodeId u = 0; u < 45; ++u) {
    EXPECT_EQ(frozen_set.SrcCount(u), mutable_set.SrcCount(u)) << u;
    EXPECT_EQ(frozen_set.DstCount(u), mutable_set.DstCount(u)) << u;
    for (NodeId v = 0; v < 45; ++v) {
      EXPECT_EQ(frozen_set.Contains(u, v), mutable_set.Contains(u, v))
          << u << "," << v;
    }
  }
  // Fwd/bwd scans agree as sets; frozen spans are additionally sorted.
  for (NodeId u = 0; u < 45; ++u) {
    std::vector<NodeId> frozen_fwd, mutable_fwd;
    frozen_set.ForEachFwd(u, [&](NodeId v) { frozen_fwd.push_back(v); });
    mutable_set.ForEachFwd(u, [&](NodeId v) { mutable_fwd.push_back(v); });
    EXPECT_TRUE(std::is_sorted(frozen_fwd.begin(), frozen_fwd.end()));
    std::sort(mutable_fwd.begin(), mutable_fwd.end());
    EXPECT_EQ(frozen_fwd, mutable_fwd) << "u=" << u;
  }
}

TEST(PairSetTest, FreezeIsIdempotent) {
  PairSet s;
  s.Add(1, 2);
  s.Freeze();
  s.Freeze();
  EXPECT_EQ(s.Size(), 1u);
  EXPECT_TRUE(s.Contains(1, 2));
}

TEST(PairSetTest, FreezeOfEmptySet) {
  PairSet s;
  s.Freeze();
  EXPECT_TRUE(s.IsFrozen());
  EXPECT_EQ(s.Size(), 0u);
  EXPECT_FALSE(s.Contains(0, 0));
  s.ForEachPair([](NodeId, NodeId) { FAIL() << "empty frozen set"; });
}

TEST(PairSetTest, EraseSrcSweepsExactlyTheLivePairs) {
  PairSet s;
  for (NodeId v = 0; v < 12; ++v) s.Add(5, 100 + v);
  s.Add(6, 100);
  s.Erase(5, 103);  // pre-existing tombstone the sweep must skip
  std::vector<NodeId> erased;
  const uint32_t n = s.EraseSrc(5, [&](NodeId v) { erased.push_back(v); });
  EXPECT_EQ(n, 11u);
  EXPECT_EQ(erased.size(), 11u);
  EXPECT_EQ(s.SrcCount(5), 0u);
  EXPECT_EQ(s.Size(), 1u);
  EXPECT_TRUE(s.Contains(6, 100));
  // The sweep is reverse over the append-order list.
  EXPECT_EQ(erased.front(), 111u);
  // A second sweep is a no-op.
  EXPECT_EQ(s.EraseSrc(5, [&](NodeId) { FAIL() << "nothing left"; }), 0u);
  // Unknown source: no-op.
  EXPECT_EQ(s.EraseSrc(42, [&](NodeId) { FAIL() << "unknown src"; }), 0u);
}

TEST(PairSetTest, EraseDstSweepsExactlyTheLivePairs) {
  PairSet s;
  for (NodeId u = 0; u < 8; ++u) s.Add(200 + u, 9);
  s.Add(200, 10);
  s.Erase(204, 9);
  std::vector<NodeId> erased;
  const uint32_t n = s.EraseDst(9, [&](NodeId u) { erased.push_back(u); });
  EXPECT_EQ(n, 7u);
  EXPECT_EQ(s.DstCount(9), 0u);
  EXPECT_EQ(s.Size(), 1u);
  EXPECT_TRUE(s.Contains(200, 10));
}

// Frozen sets are shared read-only across queries (the runtime's AG
// cache hands one AG to any number of concurrent runs), so mutating one
// must die loudly in EVERY build type. These run in Release too — where
// the former DCHECK-only guard would have been silent memory corruption;
// that regression is exactly what they pin down.
TEST(PairSetDeathTest, FrozenMutatorsDieInAllBuildTypes) {
  PairSet s;
  s.Add(1, 2);
  s.Freeze();
  ASSERT_TRUE(s.IsFrozen());
  EXPECT_DEATH(s.Add(3, 4), "frozen");
  EXPECT_DEATH(s.Erase(1, 2), "frozen");
  EXPECT_DEATH(s.EraseSrc(1, [](NodeId) {}), "frozen");
  EXPECT_DEATH(s.EraseDst(2, [](NodeId) {}), "frozen");
  PairSetShard shard;
  shard.Add(7, 8);
  EXPECT_DEATH(s.MergeShard(shard), "frozen");
}

TEST(PairSetTest, FrozenByteSizeIsZeroUntilFrozenThenPositive) {
  PairSet s;
  for (NodeId v = 0; v < 16; ++v) s.Add(1, 100 + v);
  EXPECT_EQ(s.FrozenByteSize(), 0u);
  s.Freeze();
  // At minimum the fwd+bwd neighbor arrays: 2 directions x 16 pairs.
  EXPECT_GE(s.FrozenByteSize(), 2 * 16 * sizeof(NodeId));
}

TEST(PairSetTest, StressManyPairs) {
  PairSet s;
  for (NodeId u = 0; u < 100; ++u) {
    for (NodeId v = 0; v < 20; ++v) s.Add(u, v);
  }
  EXPECT_EQ(s.Size(), 2000u);
  EXPECT_EQ(s.DistinctSrcCount(), 100u);
  EXPECT_EQ(s.DistinctDstCount(), 20u);
  for (NodeId u = 0; u < 100; u += 2) {
    for (NodeId v = 0; v < 20; ++v) s.Erase(u, v);
  }
  EXPECT_EQ(s.Size(), 1000u);
  EXPECT_EQ(s.DistinctSrcCount(), 50u);
  EXPECT_EQ(s.DistinctDstCount(), 20u);
}

}  // namespace
}  // namespace wireframe
