#include "core/generator.h"

#include <gtest/gtest.h>

#include "catalog/estimator.h"
#include "datagen/figures.h"
#include "datagen/synthetic.h"
#include "planner/edgifier.h"
#include "query/parser.h"
#include "testutil/fixtures.h"

namespace wireframe {
namespace {

AgPlan PlanFor(const QueryGraph& q, const Catalog& cat) {
  CardinalityEstimator est(cat);
  Edgifier edgifier(q, est);
  auto plan = edgifier.PlanEdgeOrder();
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return std::move(plan).value();
}

class GeneratorFig1Test : public testutil::Fig1Fixture {};

TEST_F(GeneratorFig1Test, ReachesTheIdealAnswerGraph) {
  AgGenerator gen(db_, cat_);
  auto result =
      gen.Generate(query(), PlanFor(query(), cat_), GeneratorOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ag->TotalQueryEdgePairs(), kFig1IdealAgEdges);
}

TEST_F(GeneratorFig1Test, PerEdgeContentsMatchFigure) {
  AgGenerator gen(db_, cat_);
  auto result =
      gen.Generate(query(), PlanFor(query(), cat_), GeneratorOptions{});
  ASSERT_TRUE(result.ok());
  const AnswerGraph& ag = *result->ag;
  // Edge 0 is ?w -A-> ?x: exactly {n1,n2,n3} -> n5.
  auto n = [&](const std::string& name) { return *db_.NodeOf(name); };
  EXPECT_EQ(ag.Set(0).Size(), 3u);
  EXPECT_TRUE(ag.Set(0).Contains(n("n1"), n("n5")));
  EXPECT_TRUE(ag.Set(0).Contains(n("n2"), n("n5")));
  EXPECT_TRUE(ag.Set(0).Contains(n("n3"), n("n5")));
  EXPECT_FALSE(ag.Set(0).Contains(n("n4"), n("n6")));  // burned back
  EXPECT_EQ(ag.Set(1).Size(), 1u);  // B: n5 -> n9 only
  EXPECT_TRUE(ag.Set(1).Contains(n("n5"), n("n9")));
  EXPECT_EQ(ag.Set(2).Size(), 4u);  // C: n9 -> n12..n15
  EXPECT_FALSE(ag.Set(2).Contains(n("n8"), n("n11")));  // distractor
}

TEST_F(GeneratorFig1Test, BurnbackIsIndependentOfPlanOrder) {
  AgGenerator gen(db_, cat_);
  const std::vector<std::vector<uint32_t>> orders = {
      {0, 1, 2}, {2, 1, 0}, {1, 0, 2}, {1, 2, 0}};
  for (const auto& order : orders) {
    AgPlan plan;
    plan.edge_order = order;
    auto result = gen.Generate(query(), plan, GeneratorOptions{});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->ag->TotalQueryEdgePairs(), kFig1IdealAgEdges)
        << "order starting with " << order[0];
  }
}

TEST_F(GeneratorFig1Test, TraceShowsInterleavedExtensionAndBurnback) {
  AgGenerator gen(db_, cat_);
  GeneratorOptions options;
  std::vector<GeneratorTraceStep> steps;
  options.trace = [&](const GeneratorTraceStep& s) { steps.push_back(s); };
  AgPlan plan;
  plan.edge_order = {0, 1, 2};  // Fig. 2's order: A, then B, then C
  auto result = gen.Generate(query(), plan, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0].pairs_added, 4u);   // all four A edges enter
  EXPECT_EQ(steps[0].pairs_burned, 0u);
  EXPECT_EQ(steps[1].pairs_added, 2u);   // B from {5,6}
  EXPECT_EQ(steps[1].pairs_burned, 0u);
  // Extending C from y-candidates {9,10}: 10 fails, cascade removes
  // B(6,10) and A(4,6) — the Fig. 2 "cascading node burn-back".
  EXPECT_EQ(steps[2].pairs_burned, 2u);
  EXPECT_EQ(steps[2].ag_size_after, kFig1IdealAgEdges);
}

TEST_F(GeneratorFig1Test, WalkCountIsPositiveAndBounded) {
  AgGenerator gen(db_, cat_);
  auto result =
      gen.Generate(query(), PlanFor(query(), cat_), GeneratorOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->edge_walks, 0u);
  // Never more walks than a full scan of all labels plus probes.
  EXPECT_LT(result->edge_walks, 100u);
}

TEST(GeneratorTest, EmptyLabelYieldsEmptyAg) {
  DatabaseBuilder b;
  b.Add("a", "A", "b");
  b.labels().Intern("B");  // exists in the dictionary, zero triples
  Database db = std::move(b).Build();
  Catalog cat = Catalog::Build(db.store());
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?x A ?y . ?y B ?z . }", db);
  ASSERT_TRUE(q.ok());
  AgGenerator gen(db, cat);
  AgPlan plan;
  plan.edge_order = {0, 1};
  auto result = gen.Generate(*q, plan, GeneratorOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ag->TotalQueryEdgePairs(), 0u);
}

TEST(GeneratorTest, DeadlineSurfacesAsTimedOut) {
  Database db = MakeChainBlowupGraph(50, 50, 10);
  Catalog cat = Catalog::Build(db.store());
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", db);
  ASSERT_TRUE(q.ok());
  AgGenerator gen(db, cat);
  GeneratorOptions options;
  options.deadline = Deadline::AlreadyExpired();
  AgPlan plan;
  plan.edge_order = {0, 1, 2};
  auto result = gen.Generate(*q, plan, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTimedOut());
}

TEST(GeneratorTest, ChainBlowupAgIsLinearNotMultiplicative) {
  Database db = MakeChainBlowupGraph(40, 60, 25);
  Catalog cat = Catalog::Build(db.store());
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", db);
  ASSERT_TRUE(q.ok());
  AgGenerator gen(db, cat);
  auto result = gen.Generate(*q, PlanFor(*q, cat), GeneratorOptions{});
  ASSERT_TRUE(result.ok());
  // Ideal AG: 40 + 1 + 60 = 101 edges, while embeddings = 2400.
  EXPECT_EQ(result->ag->TotalQueryEdgePairs(), 101u);
  EXPECT_GT(result->pairs_burned, 0u);  // the noise branches burned
}

}  // namespace
}  // namespace wireframe
