#include "planner/bushy_planner.h"

#include <gtest/gtest.h>

#include "query/templates.h"

namespace wireframe {
namespace {

std::vector<AgEdgeStats> UniformStats(uint32_t n, uint64_t pairs,
                                      uint64_t distinct) {
  return std::vector<AgEdgeStats>(n, AgEdgeStats{pairs, distinct, distinct});
}

// Validates tree structure: every query edge appears in exactly one leaf,
// children indices are in range, and inner nodes have two children.
void ValidateTree(const BushyPlan& plan, uint32_t num_edges) {
  ASSERT_GE(plan.root, 0);
  std::vector<int> leaf_count(num_edges, 0);
  std::vector<bool> visited(plan.nodes.size(), false);
  std::vector<int> stack{plan.root};
  while (!stack.empty()) {
    int i = stack.back();
    stack.pop_back();
    ASSERT_GE(i, 0);
    ASSERT_LT(static_cast<size_t>(i), plan.nodes.size());
    EXPECT_FALSE(visited[i]) << "node visited twice: not a tree";
    visited[i] = true;
    const BushyPlan::Node& node = plan.nodes[i];
    if (node.IsLeaf()) {
      ASSERT_LT(node.edge, num_edges);
      ++leaf_count[node.edge];
    } else {
      EXPECT_GE(node.right, 0);
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  for (uint32_t e = 0; e < num_edges; ++e) {
    EXPECT_EQ(leaf_count[e], 1) << "edge " << e;
  }
}

TEST(BushyPlannerTest, SingleEdgeIsALeafPlan) {
  QueryGraph q = ChainTemplate(1).Instantiate({0});
  BushyPlanner planner(q);
  auto plan = planner.Plan(UniformStats(1, 10, 5));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ValidateTree(*plan, 1);
  EXPECT_TRUE(plan->nodes[plan->root].IsLeaf());
  EXPECT_DOUBLE_EQ(plan->estimated_cost, 0.0);
}

TEST(BushyPlannerTest, ChainPlanCoversAllEdges) {
  QueryGraph q = ChainTemplate(4).Instantiate({0, 1, 2, 3});
  BushyPlanner planner(q);
  auto plan = planner.Plan(UniformStats(4, 100, 50));
  ASSERT_TRUE(plan.ok());
  ValidateTree(*plan, 4);
  EXPECT_GT(plan->estimated_cost, 0.0);
}

TEST(BushyPlannerTest, SnowflakeGetsBushyTree) {
  QueryGraph q =
      SnowflakeTemplate().Instantiate({0, 1, 2, 3, 4, 5, 6, 7, 8});
  BushyPlanner planner(q);
  // Arms are selective; a bushy tree joining arms independently should
  // appear (at least one inner node whose children are both inner).
  std::vector<AgEdgeStats> stats = UniformStats(9, 1000, 100);
  auto plan = planner.Plan(stats);
  ASSERT_TRUE(plan.ok());
  ValidateTree(*plan, 9);
  bool has_bushy_join = false;
  for (const auto& node : plan->nodes) {
    if (!node.IsLeaf() && !plan->nodes[node.left].IsLeaf() &&
        !plan->nodes[node.right].IsLeaf()) {
      has_bushy_join = true;
    }
  }
  EXPECT_TRUE(has_bushy_join) << "uniform snowflake should not be left-deep";
}

TEST(BushyPlannerTest, SelectiveEdgeJoinsEarly) {
  // Chain v0-v1-v2 with a tiny middle edge: the DP must join the tiny
  // edge before the fat one is multiplied.
  QueryGraph q = ChainTemplate(2).Instantiate({0, 1});
  BushyPlanner planner(q);
  std::vector<AgEdgeStats> stats = {{10000, 100, 100}, {2, 2, 2}};
  auto plan = planner.Plan(stats);
  ASSERT_TRUE(plan.ok());
  // Root joins the two leaves; estimated size uses the shared var v1:
  // 10000 * 2 / max(100, 2) = 200.
  EXPECT_DOUBLE_EQ(plan->nodes[plan->root].est_tuples, 200.0);
}

TEST(BushyPlannerTest, CyclicQuerySharedVarsMultiply) {
  QueryGraph q = CycleTemplate(4).Instantiate({0, 1, 2, 3});
  BushyPlanner planner(q);
  auto plan = planner.Plan(UniformStats(4, 50, 25));
  ASSERT_TRUE(plan.ok());
  ValidateTree(*plan, 4);
  // The final join closes the cycle on two shared vars: size shrinks.
  const auto& root = plan->nodes[plan->root];
  EXPECT_LT(root.est_tuples, 50.0 * 50.0);
}

TEST(BushyPlannerTest, RejectsOversizedQueries) {
  QueryGraph q = ChainTemplate(BushyPlanner::kMaxDpEdges + 1)
                     .Instantiate(std::vector<LabelId>(
                         BushyPlanner::kMaxDpEdges + 1, 0));
  BushyPlanner planner(q);
  auto plan = planner.Plan(
      UniformStats(BushyPlanner::kMaxDpEdges + 1, 10, 5));
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kOutOfRange);
}

TEST(BushyPlannerTest, RejectsDisconnected) {
  QueryGraph q;
  VarId a = q.AddVar("a"), b = q.AddVar("b");
  VarId c = q.AddVar("c"), d = q.AddVar("d");
  q.AddEdge(a, 0, b);
  q.AddEdge(c, 0, d);
  BushyPlanner planner(q);
  EXPECT_FALSE(planner.Plan(UniformStats(2, 5, 5)).ok());
}

TEST(BushyPlannerTest, ToStringRendersTree) {
  QueryGraph q = ChainTemplate(2).Instantiate({0, 1});
  BushyPlanner planner(q);
  auto plan = planner.Plan(UniformStats(2, 10, 5));
  ASSERT_TRUE(plan.ok());
  std::string text = plan->ToString(q);
  EXPECT_NE(text.find("join"), std::string::npos);
  EXPECT_NE(text.find("scan AG"), std::string::npos);
}

}  // namespace
}  // namespace wireframe
