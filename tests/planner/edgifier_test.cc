#include "planner/edgifier.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "planner/cost_model.h"
#include "query/parser.h"
#include "query/templates.h"
#include "util/random.h"

namespace wireframe {
namespace {

Database MakeSkewedDb() {
  DatabaseBuilder b;
  b.Add("a0", "A", "j0");
  b.Add("a1", "A", "j1");
  for (int i = 0; i < 500; ++i) {
    b.Add("s" + std::to_string(i), "B", "t" + std::to_string(i % 40));
  }
  b.Add("j0", "B", "t0");
  for (int i = 0; i < 200; ++i) {
    b.Add("t" + std::to_string(i % 40), "C", "u" + std::to_string(i));
  }
  return std::move(b).Build();
}

class EdgifierTest : public ::testing::Test {
 protected:
  EdgifierTest()
      : db_(MakeSkewedDb()),
        cat_(Catalog::Build(db_.store())),
        est_(cat_) {}
  Database db_;
  Catalog cat_;
  CardinalityEstimator est_;
};

TEST_F(EdgifierTest, PlanCoversEveryEdgeOnce) {
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", db_);
  ASSERT_TRUE(q.ok());
  Edgifier planner(*q, est_);
  auto plan = planner.PlanEdgeOrder();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::set<uint32_t> edges(plan->edge_order.begin(), plan->edge_order.end());
  EXPECT_EQ(edges.size(), 3u);
  EXPECT_EQ(plan->edge_order.size(), 3u);
}

TEST_F(EdgifierTest, PlanIsConnected) {
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", db_);
  ASSERT_TRUE(q.ok());
  Edgifier planner(*q, est_);
  auto plan = planner.PlanEdgeOrder();
  ASSERT_TRUE(plan.ok());
  std::set<VarId> bound;
  for (size_t i = 0; i < plan->edge_order.size(); ++i) {
    const QueryEdge& e = q->Edge(plan->edge_order[i]);
    if (i > 0) {
      EXPECT_TRUE(bound.count(e.src) || bound.count(e.dst))
          << "edge " << i << " extends nothing";
    }
    bound.insert(e.src);
    bound.insert(e.dst);
  }
}

TEST_F(EdgifierTest, StartsSelective) {
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", db_);
  ASSERT_TRUE(q.ok());
  Edgifier planner(*q, est_);
  auto plan = planner.PlanEdgeOrder();
  ASSERT_TRUE(plan.ok());
  // A (2 edges) must come before B (501 edges) under any sane model.
  EXPECT_EQ(q->Edge(plan->edge_order[0]).label, *db_.LabelOf("A"));
}

TEST_F(EdgifierTest, DpMatchesExhaustiveOnChain) {
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", db_);
  ASSERT_TRUE(q.ok());
  Edgifier planner(*q, est_);
  auto dp = planner.PlanEdgeOrder();
  auto ex = planner.PlanByExhaustiveSearch();
  ASSERT_TRUE(dp.ok());
  ASSERT_TRUE(ex.ok());
  // The subset-DP can only prune a prefix when a cheaper same-subset
  // prefix exists, so its final cost is close to exhaustive; on this
  // 3-chain they must coincide exactly.
  EXPECT_DOUBLE_EQ(dp->estimated_walks, ex->estimated_walks);
}

TEST_F(EdgifierTest, DpNoWorseThanRandomOrders) {
  Rng rng(99);
  Database db = MakeRandomGraph(150, 5, 2500, 7);
  Catalog cat = Catalog::Build(db.store());
  CardinalityEstimator est(cat);
  for (int trial = 0; trial < 20; ++trial) {
    QueryGraph q = MakeRandomQuery(rng, 5, 5, 5);
    Edgifier planner(q, est);
    auto plan = planner.PlanEdgeOrder();
    ASSERT_TRUE(plan.ok());
    const double dp_walks =
        SimulateAgPlan(q, est, plan->edge_order).walks;

    // Shuffle random connected orders and compare under the same model.
    for (int i = 0; i < 10; ++i) {
      std::vector<uint32_t> order(q.NumEdges());
      for (uint32_t e = 0; e < q.NumEdges(); ++e) order[e] = e;
      // Build a random connected order.
      std::vector<uint32_t> shuffled;
      std::vector<bool> used(q.NumEdges(), false);
      std::vector<bool> bound(q.NumVars(), false);
      while (shuffled.size() < q.NumEdges()) {
        std::vector<uint32_t> frontier;
        for (uint32_t e = 0; e < q.NumEdges(); ++e) {
          if (used[e]) continue;
          if (shuffled.empty() || bound[q.Edge(e).src] ||
              bound[q.Edge(e).dst]) {
            frontier.push_back(e);
          }
        }
        uint32_t pick = frontier[rng.Uniform(frontier.size())];
        used[pick] = true;
        bound[q.Edge(pick).src] = true;
        bound[q.Edge(pick).dst] = true;
        shuffled.push_back(pick);
      }
      // The subset DP keeps only the cheapest prefix per edge subset, but
      // the estimator's per-variable state is order-dependent, so a
      // slightly costlier prefix can occasionally finish cheaper. The DP
      // is near-optimal under the model, not exact: allow small slack.
      const double random_walks = SimulateAgPlan(q, est, shuffled).walks;
      EXPECT_LE(dp_walks, random_walks * 1.10)
          << "trial " << trial << ": DP lost badly to a random order";
    }
  }
}

TEST_F(EdgifierTest, SnowflakePlansAllNineEdges) {
  Database db = MakeRandomGraph(300, 9, 4000, 3);
  Catalog cat = Catalog::Build(db.store());
  CardinalityEstimator est(cat);
  QueryGraph q =
      SnowflakeTemplate().Instantiate({0, 1, 2, 3, 4, 5, 6, 7, 8});
  Edgifier planner(q, est);
  auto plan = planner.PlanEdgeOrder();
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->edge_order.size(), 9u);
  EXPECT_GT(plan->estimated_walks, 0.0);
}

TEST_F(EdgifierTest, RejectsEmptyQuery) {
  QueryGraph q;
  Edgifier planner(q, est_);
  EXPECT_FALSE(planner.PlanEdgeOrder().ok());
}

TEST_F(EdgifierTest, RejectsDisconnectedQuery) {
  QueryGraph q;
  VarId a = q.AddVar("a"), b = q.AddVar("b");
  VarId c = q.AddVar("c"), d = q.AddVar("d");
  q.AddEdge(a, 0, b);
  q.AddEdge(c, 0, d);
  Edgifier planner(q, est_);
  auto plan = planner.PlanEdgeOrder();
  ASSERT_FALSE(plan.ok());
  EXPECT_TRUE(plan.status().IsInvalidArgument());
}

}  // namespace
}  // namespace wireframe
