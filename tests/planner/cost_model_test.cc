#include "planner/cost_model.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "storage/database.h"

namespace wireframe {
namespace {

// Selective head, fat tail: A has 2 edges, B has 1000 edges (2 of which
// join A's objects).
Database MakeSkewedDb() {
  DatabaseBuilder b;
  b.Add("a0", "A", "j0");
  b.Add("a1", "A", "j1");
  b.Add("j0", "B", "t0");
  b.Add("j1", "B", "t1");
  for (int i = 0; i < 998; ++i) {
    b.Add("s" + std::to_string(i), "B", "t" + std::to_string(i % 50));
  }
  return std::move(b).Build();
}

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest()
      : db_(MakeSkewedDb()),
        cat_(Catalog::Build(db_.store())),
        est_(cat_) {}
  Database db_;
  Catalog cat_;
  CardinalityEstimator est_;
};

TEST_F(CostModelTest, SelectiveFirstBeatsFatFirst) {
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?x A ?y . ?y B ?z . }", db_);
  ASSERT_TRUE(q.ok());
  PlanCost a_first = SimulateAgPlan(*q, est_, {0, 1});
  PlanCost b_first = SimulateAgPlan(*q, est_, {1, 0});
  EXPECT_LT(a_first.walks, b_first.walks);
}

TEST_F(CostModelTest, StepEdgesAlignWithOrder) {
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?x A ?y . ?y B ?z . }", db_);
  ASSERT_TRUE(q.ok());
  PlanCost cost = SimulateAgPlan(*q, est_, {0, 1});
  ASSERT_EQ(cost.step_edges.size(), 2u);
  EXPECT_DOUBLE_EQ(cost.step_edges[0], 2.0);  // full A scan
  // Step 2: exact 2-gram — B edges whose subject is an A-object: 2.
  EXPECT_DOUBLE_EQ(cost.step_edges[1], 2.0);
}

TEST_F(CostModelTest, WalksIncludeProbesAndEdges) {
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?x A ?y . ?y B ?z . }", db_);
  ASSERT_TRUE(q.ok());
  PlanCost cost = SimulateAgPlan(*q, est_, {0, 1});
  // Scan(1 probe + 2 edges) + extension(2 probes + 2 edges) = 7.
  EXPECT_DOUBLE_EQ(cost.walks, 7.0);
  EXPECT_DOUBLE_EQ(cost.ag_edges, 4.0);
}

TEST_F(CostModelTest, EmptyOrderCostsNothing) {
  auto q = SparqlParser::ParseAndBind("select * where { ?x A ?y }", db_);
  ASSERT_TRUE(q.ok());
  PlanCost cost = SimulateAgPlan(*q, est_, {});
  EXPECT_DOUBLE_EQ(cost.walks, 0.0);
  EXPECT_TRUE(cost.step_edges.empty());
}

}  // namespace
}  // namespace wireframe
