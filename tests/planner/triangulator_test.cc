#include "planner/triangulator.h"

#include <gtest/gtest.h>

#include "datagen/synthetic.h"
#include "query/templates.h"

namespace wireframe {
namespace {

class TriangulatorTest : public ::testing::Test {
 protected:
  TriangulatorTest()
      : db_(MakeRandomGraph(100, 6, 1500, 5)),
        cat_(Catalog::Build(db_.store())),
        est_(cat_) {}
  Database db_;
  Catalog cat_;
  CardinalityEstimator est_;
};

TEST_F(TriangulatorTest, AcyclicNeedsNothing) {
  QueryGraph q = ChainTemplate(3).Instantiate({0, 1, 2});
  Triangulator tri(q, est_);
  auto c = tri.Triangulate(AnalyzeShape(q));
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->chords.empty());
  EXPECT_TRUE(c->base_triangles.empty());
}

TEST_F(TriangulatorTest, TriangleGetsBaseTriangleNoChord) {
  QueryGraph q = CycleTemplate(3).Instantiate({0, 1, 2});
  Triangulator tri(q, est_);
  auto c = tri.Triangulate(AnalyzeShape(q));
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->chords.empty());
  ASSERT_EQ(c->base_triangles.size(), 1u);
  EXPECT_EQ(c->base_triangle_closing_edge.size(), 1u);
  // All three sides of the base triangle are query edges.
  EXPECT_FALSE(c->base_triangles[0].side_uw.is_chord);
  EXPECT_FALSE(c->base_triangles[0].side_wv.is_chord);
}

TEST_F(TriangulatorTest, DiamondGetsOneChordTwoTriangles) {
  QueryGraph q = DiamondTemplate().Instantiate({0, 1, 2, 3});
  Triangulator tri(q, est_);
  auto c = tri.Triangulate(AnalyzeShape(q));
  ASSERT_TRUE(c.ok());
  ASSERT_EQ(c->chords.size(), 1u);
  // The bisecting chord participates in both triangles of the square.
  EXPECT_EQ(c->chords[0].triangles.size(), 2u);
  // The root triangle closes on a query edge.
  EXPECT_EQ(c->base_triangles.size(), 1u);
  EXPECT_NE(c->chords[0].u, c->chords[0].v);
}

TEST_F(TriangulatorTest, ChordEndpointsAreOppositeCorners) {
  QueryGraph q = DiamondTemplate().Instantiate({0, 1, 2, 3});
  Triangulator tri(q, est_);
  auto c = tri.Triangulate(AnalyzeShape(q));
  ASSERT_TRUE(c.ok());
  const Chord& chord = c->chords[0];
  // In the diamond x-e-y-z (cycle x,e,y,z), a chord must connect two
  // non-adjacent cycle vars: {x,y} or {e,z}.
  QueryShape shape = AnalyzeShape(q);
  const auto& cvars = shape.cycles[0].vars;
  auto pos = [&](VarId v) {
    for (size_t i = 0; i < cvars.size(); ++i) {
      if (cvars[i] == v) return static_cast<int>(i);
    }
    return -1;
  };
  int pu = pos(chord.u), pv = pos(chord.v);
  ASSERT_GE(pu, 0);
  ASSERT_GE(pv, 0);
  int dist = std::abs(pu - pv);
  EXPECT_EQ(std::min(dist, 4 - dist), 2) << "chord must skip one corner";
}

TEST_F(TriangulatorTest, FiveCycleGetsTwoChords) {
  QueryGraph q = CycleTemplate(5).Instantiate({0, 1, 2, 3, 4});
  Triangulator tri(q, est_);
  auto c = tri.Triangulate(AnalyzeShape(q));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->chords.size(), 2u);
  // Triangulating an m-gon yields m-2 triangles: each chord owns one
  // (listed under its closing side) plus the root base triangle.
  size_t own = 0;
  for (const Chord& chord : c->chords) {
    own += chord.triangles.empty() ? 0 : 1;
  }
  EXPECT_EQ(own + c->base_triangles.size(), 3u);
}

TEST_F(TriangulatorTest, SixCycleGetsThreeChords) {
  QueryGraph q = CycleTemplate(6).Instantiate({0, 1, 2, 3, 4, 5});
  Triangulator tri(q, est_);
  auto c = tri.Triangulate(AnalyzeShape(q));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->chords.size(), 3u);
}

TEST_F(TriangulatorTest, TwoCyclesHandledIndependently) {
  // Two diamonds sharing a vertex.
  QueryGraph q;
  VarId h = q.AddVar("h");
  VarId a1 = q.AddVar("a1"), b1 = q.AddVar("b1"), c1 = q.AddVar("c1");
  VarId a2 = q.AddVar("a2"), b2 = q.AddVar("b2"), c2 = q.AddVar("c2");
  q.AddEdge(h, 0, a1);
  q.AddEdge(a1, 1, b1);
  q.AddEdge(h, 2, c1);
  q.AddEdge(c1, 3, b1);
  q.AddEdge(h, 0, a2);
  q.AddEdge(a2, 1, b2);
  q.AddEdge(h, 2, c2);
  q.AddEdge(c2, 3, b2);
  Triangulator tri(q, est_);
  auto c = tri.Triangulate(AnalyzeShape(q));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->chords.size(), 2u);
}

TEST_F(TriangulatorTest, EstimatedCostNonNegative) {
  QueryGraph q = CycleTemplate(4).Instantiate({0, 1, 2, 3});
  Triangulator tri(q, est_);
  auto c = tri.Triangulate(AnalyzeShape(q));
  ASSERT_TRUE(c.ok());
  EXPECT_GE(c->estimated_cost, 0.0);
}

}  // namespace
}  // namespace wireframe
