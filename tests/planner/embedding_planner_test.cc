#include "planner/embedding_planner.h"

#include <set>

#include <gtest/gtest.h>

#include "query/templates.h"

namespace wireframe {
namespace {

TEST(EmbeddingPlannerTest, StartsWithSmallestEdgeSet) {
  QueryGraph q = ChainTemplate(3).Instantiate({0, 1, 2});
  EmbeddingPlanner planner(q);
  std::vector<AgEdgeStats> stats = {
      {100, 50, 50}, {3, 3, 3}, {200, 80, 80}};
  auto plan = planner.PlanJoinOrder(stats);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->join_order[0], 1u);
}

TEST(EmbeddingPlannerTest, OrderIsConnectedPermutation) {
  QueryGraph q =
      SnowflakeTemplate().Instantiate({0, 1, 2, 3, 4, 5, 6, 7, 8});
  EmbeddingPlanner planner(q);
  std::vector<AgEdgeStats> stats(9);
  for (uint32_t e = 0; e < 9; ++e) stats[e] = {10 + e, 5, 5};
  auto plan = planner.PlanJoinOrder(stats);
  ASSERT_TRUE(plan.ok());
  std::set<uint32_t> seen(plan->join_order.begin(), plan->join_order.end());
  EXPECT_EQ(seen.size(), 9u);

  std::set<VarId> bound;
  for (size_t i = 0; i < plan->join_order.size(); ++i) {
    const QueryEdge& e = q.Edge(plan->join_order[i]);
    if (i > 0) {
      EXPECT_TRUE(bound.count(e.src) || bound.count(e.dst));
    }
    bound.insert(e.src);
    bound.insert(e.dst);
  }
}

TEST(EmbeddingPlannerTest, PrefersLowFanoutExtension) {
  // Chain v0-v1-v2-v3; edge 1 tiny, edge 0 has fanout 1, edge 2 fanout 50.
  QueryGraph q = ChainTemplate(3).Instantiate({0, 1, 2});
  EmbeddingPlanner planner(q);
  std::vector<AgEdgeStats> stats = {
      {10, 10, 10},   // edge 0: fanout 1 from v1
      {5, 5, 5},      // edge 1: start
      {250, 5, 250},  // edge 2: fanout 50 from v2
  };
  auto plan = planner.PlanJoinOrder(stats);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->join_order, (std::vector<uint32_t>{1, 0, 2}));
}

TEST(EmbeddingPlannerTest, EstimatedTuplesReflectFanouts) {
  QueryGraph q = ChainTemplate(2).Instantiate({0, 1});
  EmbeddingPlanner planner(q);
  // 4 pairs from 2 sources = fanout 2 onto edge 0's side.
  std::vector<AgEdgeStats> stats = {{2, 2, 2}, {4, 2, 4}};
  auto plan = planner.PlanJoinOrder(stats);
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->estimated_tuples, 4.0);
}

TEST(EmbeddingPlannerTest, BothEndsBoundActsAsFilter) {
  // 2-cycle: parallel edges between x and y.
  QueryGraph q;
  VarId x = q.AddVar("x"), y = q.AddVar("y");
  q.AddEdge(x, 0, y);
  q.AddEdge(x, 1, y);
  EmbeddingPlanner planner(q);
  std::vector<AgEdgeStats> stats = {{10, 5, 5}, {100, 10, 10}};
  auto plan = planner.PlanJoinOrder(stats);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->join_order[0], 0u);
  // Second edge filters: estimate must not exceed the first edge's size.
  EXPECT_LE(plan->estimated_tuples, 10.0);
}

TEST(EmbeddingPlannerTest, RejectsEmptyQuery) {
  QueryGraph q;
  EmbeddingPlanner planner(q);
  EXPECT_FALSE(planner.PlanJoinOrder({}).ok());
}

TEST(EmbeddingPlannerTest, ZeroSizeEdgeGivesZeroEstimate) {
  QueryGraph q = ChainTemplate(2).Instantiate({0, 1});
  EmbeddingPlanner planner(q);
  std::vector<AgEdgeStats> stats = {{0, 0, 0}, {4, 2, 4}};
  auto plan = planner.PlanJoinOrder(stats);
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->estimated_tuples, 0.0);
}

}  // namespace
}  // namespace wireframe
