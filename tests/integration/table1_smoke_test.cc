#include <sstream>

#include <gtest/gtest.h>

#include "benchlib/harness.h"
#include "datagen/yago_like.h"
#include "query/parser.h"

namespace wireframe {
namespace {

// End-to-end smoke of the Table 1 pipeline at test scale: generate the
// YAGO-like graph, bind all ten queries, run every engine through the
// harness, and check the report renders.
class Table1SmokeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    YagoLikeConfig config;
    config.scale = 0.02;
    config.seed = 7;
    db_ = new Database(MakeYagoLike(config));
    cat_ = new Catalog(Catalog::Build(db_->store()));
  }
  static void TearDownTestSuite() {
    delete cat_;
    cat_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static Database* db_;
  static Catalog* cat_;
};

Database* Table1SmokeTest::db_ = nullptr;
Catalog* Table1SmokeTest::cat_ = nullptr;

TEST_F(Table1SmokeTest, WireframeRunsAllTenQueries) {
  std::vector<std::string> queries = Table1Queries();
  auto wf = MakeEngine("WF");
  for (size_t i = 0; i < queries.size(); ++i) {
    auto q = SparqlParser::ParseAndBind(queries[i], *db_);
    ASSERT_TRUE(q.ok()) << i;
    CountingSink sink;
    EngineOptions options;
    options.deadline = Deadline::AfterSeconds(30);
    auto stats = wf->Run(*db_, *cat_, *q, options, &sink);
    ASSERT_TRUE(stats.ok()) << "query " << i << ": "
                            << stats.status().ToString();
  }
}

TEST_F(Table1SmokeTest, WireframeAgreesWithOracleOnAllTenQueries) {
  std::vector<std::string> queries = Table1Queries();
  auto wf = MakeEngine("WF");
  auto nj = MakeEngine("NJ");
  for (size_t i = 0; i < queries.size(); ++i) {
    auto q = SparqlParser::ParseAndBind(queries[i], *db_);
    ASSERT_TRUE(q.ok());
    CountingSink wf_sink, nj_sink;
    EngineOptions options;
    options.deadline = Deadline::AfterSeconds(60);
    auto wf_stats = wf->Run(*db_, *cat_, *q, options, &wf_sink);
    auto nj_stats = nj->Run(*db_, *cat_, *q, options, &nj_sink);
    ASSERT_TRUE(wf_stats.ok()) << i;
    ASSERT_TRUE(nj_stats.ok()) << i;
    EXPECT_EQ(wf_sink.count(), nj_sink.count()) << "query " << i;
  }
}

TEST_F(Table1SmokeTest, SnowflakesFactorizeWell) {
  // At least one snowflake must show |AG| substantially below
  // |embeddings| even at the tiny test scale.
  std::vector<std::string> queries = Table1Queries();
  auto wf = MakeEngine("WF");
  bool found_factorization_win = false;
  for (size_t i = 0; i < 5; ++i) {
    auto q = SparqlParser::ParseAndBind(queries[i], *db_);
    ASSERT_TRUE(q.ok());
    CountingSink sink;
    EngineOptions options;
    options.deadline = Deadline::AfterSeconds(60);
    auto stats = wf->Run(*db_, *cat_, *q, options, &sink);
    ASSERT_TRUE(stats.ok());
    if (stats->output_tuples > 4 * stats->ag_pairs) {
      found_factorization_win = true;
    }
  }
  EXPECT_TRUE(found_factorization_win);
}

TEST_F(Table1SmokeTest, HarnessRendersTable) {
  BenchConfig config;
  config.engines = {"WF", "NJ"};
  config.timeout_seconds = 30;
  config.repetitions = 1;
  Table1Harness harness(*db_, *cat_, config);

  std::vector<BenchQuery> bench_queries;
  std::vector<std::string> queries = Table1Queries();
  for (size_t i : {size_t{1}, size_t{7}}) {  // one snowflake, one diamond
    auto q = SparqlParser::ParseAndBind(queries[i], *db_);
    ASSERT_TRUE(q.ok());
    bench_queries.push_back(
        {std::to_string(i + 1), Table1RowLabel(i), std::move(q).value()});
  }
  std::ostringstream os;
  harness.RunSuite(bench_queries, os);
  const std::string out = os.str();
  EXPECT_NE(out.find("|AG|"), std::string::npos);
  EXPECT_NE(out.find("|Embeddings|"), std::string::npos);
  EXPECT_NE(out.find("WF"), std::string::npos);
}

TEST_F(Table1SmokeTest, HarnessMarksTimeouts) {
  BenchConfig config;
  config.engines = {"MD"};
  config.timeout_seconds = 0.0;  // expires immediately
  config.repetitions = 1;
  Table1Harness harness(*db_, *cat_, config);
  auto q = SparqlParser::ParseAndBind(Table1Queries()[0], *db_);
  ASSERT_TRUE(q.ok());
  BenchCell cell = harness.RunCell(*q, "MD");
  EXPECT_FALSE(cell.ok);
  EXPECT_TRUE(cell.timed_out);
}

}  // namespace
}  // namespace wireframe
