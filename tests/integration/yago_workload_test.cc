// Workload-level properties on the YAGO-like graph: mining soundness and
// engine agreement on mined queries (parameterized over templates).

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "core/wireframe.h"
#include "datagen/yago_like.h"
#include "exec/engine.h"
#include "query/miner.h"
#include "query/parser.h"

namespace wireframe {
namespace {

class YagoWorkloadTest : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    YagoLikeConfig config;
    config.scale = 0.02;
    config.seed = 11;
    db_ = new Database(MakeYagoLike(config));
    cat_ = new Catalog(Catalog::Build(db_->store()));
  }
  static void TearDownTestSuite() {
    delete cat_;
    delete db_;
    cat_ = nullptr;
    db_ = nullptr;
  }

  static QueryTemplate TemplateFor(int kind) {
    switch (kind) {
      case 0:
        return ChainTemplate(2);
      case 1:
        return ChainTemplate(3);
      case 2:
        return StarTemplate(3);
      default:
        return DiamondTemplate();
    }
  }

  static Database* db_;
  static Catalog* cat_;
};

Database* YagoWorkloadTest::db_ = nullptr;
Catalog* YagoWorkloadTest::cat_ = nullptr;

TEST_P(YagoWorkloadTest, MinedQueriesAreNonEmptyAndEnginesAgree) {
  QueryTemplate tmpl = TemplateFor(GetParam());
  QueryMiner miner(*db_, *cat_);
  MinerOptions options;
  options.max_queries = 25;
  options.max_candidates = 400000;
  MinerReport report;
  auto mined = miner.Mine(tmpl, options, &report);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  ASSERT_FALSE(mined->empty()) << "template " << tmpl.name;

  auto wf = MakeEngine("WF");
  auto nj = MakeEngine("NJ");
  size_t checked = 0;
  for (const MinedQuery& mq : *mined) {
    if (++checked > 8) break;  // keep the test fast
    QueryGraph q = tmpl.Instantiate(mq.labels);
    CountingSink wf_sink, nj_sink;
    EngineOptions run;
    run.deadline = Deadline::AfterSeconds(30);
    auto s1 = wf->Run(*db_, *cat_, q, run, &wf_sink);
    auto s2 = nj->Run(*db_, *cat_, q, run, &nj_sink);
    ASSERT_TRUE(s1.ok());
    ASSERT_TRUE(s2.ok());
    EXPECT_GT(wf_sink.count(), 0u) << "mined query must be non-empty";
    EXPECT_EQ(wf_sink.count(), nj_sink.count());
  }
}

TEST_P(YagoWorkloadTest, MinerPruningIsSound) {
  // Queries pruned by the 2-gram check must really be empty: verify on a
  // sample by brute-force evaluation of rejected prefixes.
  QueryTemplate tmpl = TemplateFor(GetParam());
  QueryMiner miner(*db_, *cat_);
  MinerOptions with, without;
  with.max_queries = without.max_queries = 50;
  with.max_candidates = without.max_candidates = 200000;
  without.verify_nonempty = false;
  MinerReport rep_with, rep_without;
  auto a = miner.Mine(tmpl, with, &rep_with);
  auto b = miner.Mine(tmpl, without, &rep_without);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Everything accepted with verification also survives without it.
  EXPECT_GE(b->size(), a->size());
}

std::string TemplateName(const ::testing::TestParamInfo<int>& info) {
  static const char* const kNames[] = {"Chain2", "Chain3", "Star3",
                                       "Diamond"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(Templates, YagoWorkloadTest,
                         ::testing::Values(0, 1, 2, 3), TemplateName);

}  // namespace
}  // namespace wireframe
