// Concurrent-vs-serial equivalence: N queries submitted concurrently
// through the shared QueryRuntime must produce exactly the embeddings and
// |AG| of sequential, private-pool runs. Together with the runtime unit
// suite this is the TSan CI job's cross-query workload: several driver
// threads interleave morsel task-groups from different queries on one
// pool while the test compares results.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/wireframe.h"
#include "datagen/synthetic.h"
#include "query/parser.h"
#include "query/shape.h"
#include "runtime/query_runtime.h"
#include "runtime/server.h"
#include "testutil/fixtures.h"

namespace wireframe {
namespace {

using runtime::QueryOutcome;
using runtime::QueryRequest;
using runtime::QueryRuntime;
using runtime::QuerySession;
using runtime::RuntimeOptions;

struct SerialRun {
  std::multiset<std::vector<NodeId>> rows;
  uint64_t ag_pairs = 0;
};

/// Ground truth: the historical path — one engine, threads=1, no runtime.
SerialRun RunSerial(const Database& db, const Catalog& cat,
                    const QueryGraph& q) {
  WireframeEngine engine;
  CollectingSink sink;
  EngineOptions options;  // threads = 1: exact serial paths
  auto stats = engine.Run(db, cat, q, options, &sink);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  SerialRun run;
  run.rows = {sink.rows().begin(), sink.rows().end()};
  if (stats.ok()) run.ag_pairs = stats->ag_pairs;
  return run;
}

RuntimeOptions ConcurrentOptions(uint32_t inflight) {
  RuntimeOptions options;
  options.pool_threads = 4;
  options.admission.max_inflight = inflight;
  options.admission.max_queued = 64;
  return options;
}

TEST(ConcurrentEquivalenceTest, MixedWorkloadMatchesSerialRuns) {
  // A workload diverse enough to keep several phase-1/phase-2 loops in
  // flight at once: chain blow-ups plus random acyclic and cyclic
  // queries over random graphs.
  std::vector<Database> dbs;
  std::vector<Catalog> cats;
  std::vector<QueryGraph> queries;

  dbs.push_back(MakeChainBlowupGraph(300, 300, /*noise=*/30));
  cats.push_back(Catalog::Build(dbs.back().store()));
  auto chain = SparqlParser::ParseAndBind(
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", dbs.back());
  ASSERT_TRUE(chain.ok());
  queries.push_back(std::move(chain).value());

  Rng rng(20260730);
  int cyclic_seen = 0;
  for (int trial = 0; trial < 7; ++trial) {
    dbs.push_back(MakeRandomGraph(40, 3, 420, 5000 + trial));
    cats.push_back(Catalog::Build(dbs.back().store()));
    QueryGraph q = MakeRandomQuery(rng, 2 + rng.Uniform(4), 5, 3);
    cyclic_seen += IsAcyclic(q) ? 0 : 1;
    queries.push_back(std::move(q));
  }
  EXPECT_GT(cyclic_seen, 0) << "workload must exercise the chord paths";

  std::vector<SerialRun> expected;
  expected.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    expected.push_back(RunSerial(dbs[i], cats[i], queries[i]));
  }

  // Two rounds at different in-flight levels; every query of a round is
  // submitted before any result is awaited, so executions overlap.
  for (uint32_t inflight : {4u, 8u}) {
    QueryRuntime runtime(ConcurrentOptions(inflight));
    std::vector<std::unique_ptr<CollectingSink>> sinks;
    std::vector<std::shared_ptr<QuerySession>> sessions;
    for (size_t i = 0; i < queries.size(); ++i) {
      sinks.push_back(std::make_unique<CollectingSink>());
      QueryRequest request;
      request.db = &dbs[i];
      request.catalog = &cats[i];
      request.query = queries[i];
      request.sink = sinks.back().get();
      auto session = runtime.Submit(std::move(request));
      ASSERT_TRUE(session.ok()) << session.status().ToString();
      sessions.push_back(std::move(session).value());
    }
    for (size_t i = 0; i < sessions.size(); ++i) {
      sessions[i]->Wait();
      EXPECT_EQ(sessions[i]->outcome(), QueryOutcome::kCompleted)
          << "query " << i << " inflight " << inflight << ": "
          << sessions[i]->status().ToString();
      std::multiset<std::vector<NodeId>> rows = {sinks[i]->rows().begin(),
                                                 sinks[i]->rows().end()};
      EXPECT_EQ(rows, expected[i].rows)
          << "query " << i << " inflight " << inflight;
      EXPECT_EQ(sessions[i]->stats().ag_pairs, expected[i].ag_pairs)
          << "query " << i << " inflight " << inflight;
    }
  }
}

// The same queries submitted twice concurrently against ONE runtime must
// not interfere: identical sessions produce identical results.
TEST(ConcurrentEquivalenceTest, DuplicateQueriesDoNotInterfere) {
  Database db = MakeChainBlowupGraph(250, 250, /*noise=*/25);
  Catalog cat = Catalog::Build(db.store());
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", db);
  ASSERT_TRUE(q.ok());
  const SerialRun expected = RunSerial(db, cat, *q);

  QueryRuntime runtime(ConcurrentOptions(4));
  constexpr int kCopies = 6;
  std::vector<std::unique_ptr<CollectingSink>> sinks;
  std::vector<std::shared_ptr<QuerySession>> sessions;
  for (int i = 0; i < kCopies; ++i) {
    sinks.push_back(std::make_unique<CollectingSink>());
    QueryRequest request;
    request.db = &db;
    request.catalog = &cat;
    request.query = *q;
    request.sink = sinks.back().get();
    auto session = runtime.Submit(std::move(request));
    ASSERT_TRUE(session.ok());
    sessions.push_back(std::move(session).value());
  }
  for (int i = 0; i < kCopies; ++i) {
    sessions[i]->Wait();
    EXPECT_EQ(sessions[i]->outcome(), QueryOutcome::kCompleted);
    std::multiset<std::vector<NodeId>> rows = {sinks[i]->rows().begin(),
                                               sinks[i]->rows().end()};
    EXPECT_EQ(rows, expected.rows) << "copy " << i;
    EXPECT_EQ(sessions[i]->stats().ag_pairs, expected.ag_pairs);
  }
}

// The server front-end: a SPARQL batch over one shared database yields
// exact per-query results and reports.
TEST(ConcurrentEquivalenceTest, ServerBatchMatchesSerialRuns) {
  Database db = MakeChainBlowupGraph(200, 200, /*noise=*/10);
  Catalog cat = Catalog::Build(db.store());
  const std::string chain =
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }";
  const std::string pair = "select * where { ?x B ?y . ?y C ?z . }";

  auto chain_q = SparqlParser::ParseAndBind(chain, db);
  auto pair_q = SparqlParser::ParseAndBind(pair, db);
  ASSERT_TRUE(chain_q.ok());
  ASSERT_TRUE(pair_q.ok());
  const SerialRun chain_expected = RunSerial(db, cat, *chain_q);
  const SerialRun pair_expected = RunSerial(db, cat, *pair_q);

  runtime::ServerOptions options;
  options.runtime = ConcurrentOptions(4);
  runtime::Server server(db, cat, options);
  std::vector<std::unique_ptr<CollectingSink>> sinks;
  std::vector<Sink*> sink_ptrs;
  for (int i = 0; i < 4; ++i) {
    sinks.push_back(std::make_unique<CollectingSink>());
    sink_ptrs.push_back(sinks.back().get());
  }
  const std::vector<std::string> batch = {chain, pair, chain, pair};
  const std::vector<runtime::QueryReport> reports =
      server.RunBatch(batch, &sink_ptrs);
  ASSERT_EQ(reports.size(), 4u);
  for (size_t i = 0; i < reports.size(); ++i) {
    ASSERT_TRUE(reports[i].admitted);
    EXPECT_EQ(reports[i].outcome, QueryOutcome::kCompleted) << i;
    const SerialRun& expected = i % 2 == 0 ? chain_expected : pair_expected;
    std::multiset<std::vector<NodeId>> rows = {sinks[i]->rows().begin(),
                                               sinks[i]->rows().end()};
    EXPECT_EQ(rows, expected.rows) << "batch query " << i;
    EXPECT_EQ(reports[i].rows, expected.rows.size());
  }
}

// Service classes are a scheduling knob, never a semantic one: the same
// batch submitted under wildly different weights/quotas yields exactly
// the serial embeddings and |AG| per query, while every report carries
// its resolved class.
TEST(ConcurrentEquivalenceTest, ServiceClassNeverChangesResults) {
  Database db = MakeChainBlowupGraph(200, 200, /*noise=*/10);
  Catalog cat = Catalog::Build(db.store());
  const std::string chain =
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }";
  const std::string pair = "select * where { ?x B ?y . ?y C ?z . }";
  auto chain_q = SparqlParser::ParseAndBind(chain, db);
  auto pair_q = SparqlParser::ParseAndBind(pair, db);
  ASSERT_TRUE(chain_q.ok());
  ASSERT_TRUE(pair_q.ok());
  const SerialRun chain_expected = RunSerial(db, cat, *chain_q);
  const SerialRun pair_expected = RunSerial(db, cat, *pair_q);

  runtime::ServerOptions options;
  options.runtime = ConcurrentOptions(4);
  runtime::TenantSpec latency;
  latency.name = "latency";
  latency.weight = 1000;
  runtime::TenantSpec batch_class;
  batch_class.name = "batch";
  batch_class.weight = 1;
  batch_class.max_inflight = 2;
  options.runtime.admission.tenants = {latency, batch_class};
  runtime::Server server(db, cat, options);

  std::vector<std::unique_ptr<CollectingSink>> sinks;
  std::vector<Sink*> sink_ptrs;
  for (int i = 0; i < 6; ++i) {
    sinks.push_back(std::make_unique<CollectingSink>());
    sink_ptrs.push_back(sinks.back().get());
  }
  const std::vector<std::string> queries = {chain, pair, chain,
                                            pair, chain, pair};
  const std::vector<std::string> classes = {"latency", "batch", "batch",
                                            "latency", "", "unknown"};
  const std::vector<runtime::QueryReport> reports =
      server.RunBatch(queries, &sink_ptrs, &classes);
  ASSERT_EQ(reports.size(), 6u);
  const std::vector<std::string> resolved = {"latency", "batch", "batch",
                                             "latency", "default", "default"};
  for (size_t i = 0; i < reports.size(); ++i) {
    ASSERT_TRUE(reports[i].admitted) << i;
    EXPECT_EQ(reports[i].outcome, QueryOutcome::kCompleted)
        << i << ": " << reports[i].status.ToString();
    EXPECT_EQ(reports[i].service_class, resolved[i]) << i;
    const SerialRun& expected = i % 2 == 0 ? chain_expected : pair_expected;
    std::multiset<std::vector<NodeId>> rows = {sinks[i]->rows().begin(),
                                               sinks[i]->rows().end()};
    EXPECT_EQ(rows, expected.rows) << "batch query " << i;
    EXPECT_EQ(reports[i].stats.ag_pairs, expected.ag_pairs) << i;
  }
}

}  // namespace
}  // namespace wireframe
