// Cache equivalence: a query served from the answer-graph cache (phase 2
// over a shared frozen AG built by an earlier isomorphic run) must
// produce exactly the embeddings and |AG| of a cold run — on the paper
// fixtures and randomized workloads, and under row budgets, deadlines,
// and mid-defactorization cancellation. The concurrent same-key test is
// the TSan workload for the single-flight fill protocol.

#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/wireframe.h"
#include "datagen/synthetic.h"
#include "query/parser.h"
#include "runtime/query_runtime.h"
#include "testutil/fixtures.h"

namespace wireframe {
namespace runtime {
namespace {

/// Blocks phase 2 on the first emitted row until released (same idiom as
/// the runtime tests): holds a hit provably mid-defactorization.
class GateSink : public Sink {
 public:
  bool Emit(const std::vector<NodeId>&) override {
    std::unique_lock<std::mutex> lock(mu_);
    if (!started_) {
      started_ = true;
      started_cv_.notify_all();
    }
    release_cv_.wait(lock, [&] { return released_; });
    ++count_;
    return true;
  }
  uint64_t count() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }
  void WaitStarted() {
    std::unique_lock<std::mutex> lock(mu_);
    started_cv_.wait(lock, [&] { return started_; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    release_cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable started_cv_;
  std::condition_variable release_cv_;
  bool started_ = false;
  bool released_ = false;
  uint64_t count_ = 0;
};

RuntimeOptions CachedRuntime() {
  RuntimeOptions options;
  options.pool_threads = 2;
  options.admission.max_inflight = 2;
  options.admission.ag_cache_bytes = 256ull << 20;
  return options;
}

struct CacheRun {
  std::set<std::vector<NodeId>> rows;
  uint64_t ag_pairs = 0;
  bool cache_hit = false;
  QueryOutcome outcome = QueryOutcome::kPending;
};

CacheRun RunCached(QueryRuntime& runtime, const Database& db,
                   const Catalog& cat, const QueryGraph& q) {
  CollectingSink sink;
  QueryRequest request;
  request.db = &db;
  request.catalog = &cat;
  request.query = q;
  request.sink = &sink;
  auto session = runtime.Submit(std::move(request));
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  if (!session.ok()) return {};
  (*session)->Wait();
  EXPECT_TRUE((*session)->status().ok())
      << (*session)->status().ToString();
  CacheRun run;
  run.rows = {sink.rows().begin(), sink.rows().end()};
  run.ag_pairs = (*session)->stats().ag_pairs;
  run.cache_hit = (*session)->cache_hit();
  run.outcome = (*session)->outcome();
  return run;
}

/// Cold fill, then a hit off the shared frozen AG: embeddings and |AG|
/// must match each other AND a direct engine run (the ground truth also
/// proves the canonical-space remap is sound on both paths).
void ExpectColdAndHitEquivalent(const Database& db, const Catalog& cat,
                                const QueryGraph& q, const char* what) {
  WireframeEngine engine;
  CollectingSink direct_sink;
  auto direct = engine.Run(db, cat, q, EngineOptions{}, &direct_sink);
  ASSERT_TRUE(direct.ok()) << what << ": " << direct.status().ToString();
  const std::set<std::vector<NodeId>> truth(direct_sink.rows().begin(),
                                            direct_sink.rows().end());

  QueryRuntime runtime(CachedRuntime());
  const CacheRun cold = RunCached(runtime, db, cat, q);
  EXPECT_FALSE(cold.cache_hit) << what;
  EXPECT_EQ(cold.outcome, QueryOutcome::kCompleted) << what;
  EXPECT_EQ(cold.rows, truth) << what << " (cold)";

  const CacheRun hit = RunCached(runtime, db, cat, q);
  EXPECT_TRUE(hit.cache_hit) << what;
  EXPECT_EQ(hit.outcome, QueryOutcome::kCompleted) << what;
  EXPECT_EQ(hit.rows, truth) << what << " (hit)";
  EXPECT_EQ(hit.ag_pairs, cold.ag_pairs) << what;
}

using CacheFig1Test = testutil::Fig1Fixture;
using CacheFig4Test = testutil::Fig4Fixture;

TEST_F(CacheFig1Test, Fig1HitMatchesColdRun) {
  ExpectColdAndHitEquivalent(db_, cat_, query(), "fig1");
}

TEST_F(CacheFig4Test, Fig4HitMatchesColdRun) {
  ExpectColdAndHitEquivalent(db_, cat_, query(), "fig4");
}

TEST(CacheEquivalenceTest, RandomInstancesMatch) {
  Rng rng(20260808);
  for (int trial = 0; trial < 6; ++trial) {
    Database db = MakeRandomGraph(30, 3, 300, 7300 + trial);
    Catalog cat = Catalog::Build(db.store());
    QueryGraph q = MakeRandomQuery(rng, 2 + rng.Uniform(3), 5, 3);
    ExpectColdAndHitEquivalent(db, cat, q, "random");
  }
}

// Cyclic shape: the hit path's chord filters probe the shared frozen AG.
TEST(CacheEquivalenceTest, DenseSquareChordFiltersMatch) {
  Database db = MakeRandomGraph(80, 3, 6000, 777);
  Catalog cat = Catalog::Build(db.store());
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?a . }", db);
  ASSERT_TRUE(q.ok());
  ExpectColdAndHitEquivalent(db, cat, *q, "dense-square");
}

/// Chain-blowup workload shared by the budget/deadline/cancel tests:
/// 40k embeddings, big enough that stops land mid-enumeration.
class CacheRuntimeTest : public ::testing::Test {
 protected:
  CacheRuntimeTest()
      : db_(MakeChainBlowupGraph(200, 200, /*noise=*/20)),
        cat_(Catalog::Build(db_.store())) {
    auto q = SparqlParser::ParseAndBind(
        "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", db_);
    EXPECT_TRUE(q.ok());
    query_ = std::move(q).value();
  }

  QueryRequest Request(Sink* sink = nullptr) const {
    QueryRequest request;
    request.db = &db_;
    request.catalog = &cat_;
    request.query = query_;
    request.sink = sink;
    return request;
  }

  Database db_;
  Catalog cat_;
  QueryGraph query_;
};

// A budget-stopped cold run still completes phase 1 and fills the cache;
// the hit repeat stops at the same budget with the same row count.
TEST_F(CacheRuntimeTest, RowBudgetsMatchBetweenColdAndHit) {
  QueryRuntime runtime(CachedRuntime());
  for (int pass = 0; pass < 2; ++pass) {
    QueryRequest request = Request();
    request.row_budget = 100;
    auto session = runtime.Submit(std::move(request));
    ASSERT_TRUE(session.ok());
    (*session)->Wait();
    EXPECT_EQ((*session)->outcome(), QueryOutcome::kBudgetExhausted)
        << "pass " << pass;
    EXPECT_EQ((*session)->rows_emitted(), 100u) << "pass " << pass;
    EXPECT_EQ((*session)->cache_hit(), pass == 1) << "pass " << pass;
  }
  // A later unbudgeted hit still sees the complete AG: the budget only
  // clamped the earlier sinks, never the cached graph.
  auto full = runtime.Submit(Request());
  ASSERT_TRUE(full.ok());
  (*full)->Wait();
  EXPECT_TRUE((*full)->cache_hit());
  EXPECT_EQ((*full)->outcome(), QueryOutcome::kCompleted);
  EXPECT_EQ((*full)->rows_emitted(), 200u * 200u);
}

TEST_F(CacheRuntimeTest, DeadlineStillFiresOnTheHitPath) {
  QueryRuntime runtime(CachedRuntime());
  auto fill = runtime.Submit(Request());
  ASSERT_TRUE(fill.ok());
  (*fill)->Wait();
  ASSERT_EQ((*fill)->outcome(), QueryOutcome::kCompleted);

  QueryRequest timed = Request();
  timed.timeout_seconds = 1e-4;
  auto session = runtime.Submit(std::move(timed));
  ASSERT_TRUE(session.ok());
  (*session)->Wait();
  EXPECT_TRUE((*session)->cache_hit());
  EXPECT_EQ((*session)->outcome(), QueryOutcome::kTimedOut);
  EXPECT_TRUE((*session)->status().IsTimedOut())
      << (*session)->status().ToString();
}

TEST_F(CacheRuntimeTest, CancelMidDefactorizationOnTheHitPath) {
  QueryRuntime runtime(CachedRuntime());
  auto fill = runtime.Submit(Request());
  ASSERT_TRUE(fill.ok());
  (*fill)->Wait();
  ASSERT_EQ((*fill)->outcome(), QueryOutcome::kCompleted);

  GateSink gate;
  auto session = runtime.Submit(Request(&gate));
  ASSERT_TRUE(session.ok());
  gate.WaitStarted();  // provably enumerating off the cached AG
  (*session)->Cancel();
  gate.Release();
  (*session)->Wait();
  EXPECT_TRUE((*session)->cache_hit());
  EXPECT_EQ((*session)->outcome(), QueryOutcome::kCancelled);
  EXPECT_TRUE((*session)->status().IsCancelled())
      << (*session)->status().ToString();
}

// Concurrent identical submissions race the single-flight fill: exactly
// one inserts, the losers run cold without waiting, later arrivals hit —
// and every query still delivers the full result.
TEST_F(CacheRuntimeTest, ConcurrentSameKeySubmissionsRaceOneFill) {
  RuntimeOptions options = CachedRuntime();
  options.admission.max_inflight = 4;
  QueryRuntime runtime(options);

  constexpr int kQueries = 6;
  std::vector<std::shared_ptr<QuerySession>> sessions;
  for (int i = 0; i < kQueries; ++i) {
    auto session = runtime.Submit(Request());
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    sessions.push_back(std::move(session).value());
  }
  for (auto& session : sessions) {
    session->Wait();
    EXPECT_EQ(session->outcome(), QueryOutcome::kCompleted)
        << session->status().ToString();
    EXPECT_EQ(session->rows_emitted(), 200u * 200u);
  }
  const RuntimeStats stats = runtime.stats();
  ASSERT_EQ(stats.tenants.size(), 1u);
  const TenantStats& ts = stats.tenants[0];
  EXPECT_EQ(ts.cache_hits + ts.cache_misses,
            static_cast<uint64_t>(kQueries));
  EXPECT_EQ(ts.cache_inserts, 1u) << "single-flight: exactly one fill";
  EXPECT_EQ(ts.cache_entries, 1u);
  EXPECT_EQ(ts.cache_evictions, 0u);
}

}  // namespace
}  // namespace runtime
}  // namespace wireframe
