// Kernel dispatch equivalence: every query must produce bit-identical
// rows whether the span kernels run the AVX2 path or the portable
// scalar path, at every thread count. Runs on the paper fixtures plus
// the dense-square chord workload (the intersection-heavy shape the
// SIMD path exists for). When the binary was built without the AVX2 TU
// or the host lacks AVX2 the two runs collapse to the same path and the
// test degenerates to a (still valid) self-comparison.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/wireframe.h"
#include "datagen/synthetic.h"
#include "exec/engine.h"
#include "query/parser.h"
#include "testutil/fixtures.h"
#include "util/span_kernels.h"

namespace wireframe {
namespace {

/// Forces the scalar kernels for the lifetime of one run and restores
/// the previous override afterwards, so test order never leaks state.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool on) : prev_(ScalarKernelsForced()) {
    ForceScalarKernels(on);
  }
  ~ScopedForceScalar() { ForceScalarKernels(prev_); }

 private:
  bool prev_;
};

struct KernelRun {
  std::vector<std::vector<NodeId>> rows;
  uint64_t embeddings = 0;
  uint64_t edge_walks = 0;
};

KernelRun RunWithDispatch(const Database& db, const Catalog& cat,
                          const QueryGraph& q, bool force_scalar,
                          uint32_t threads, bool bushy) {
  ScopedForceScalar guard(force_scalar);
  WireframeOptions wf_options;
  wf_options.freeze_ag = true;
  wf_options.bushy_phase2 = bushy;
  WireframeEngine engine(wf_options);
  CollectingSink sink;
  EngineOptions options;
  options.threads = threads;
  auto detail = engine.RunDetailed(db, cat, q, options, &sink);
  EXPECT_TRUE(detail.ok()) << detail.status().ToString();
  KernelRun run;
  run.rows = sink.rows();
  // Parallel morsels may interleave rows; sort so the comparison is
  // over content (duplicates included) rather than emission order.
  std::sort(run.rows.begin(), run.rows.end());
  if (detail.ok()) {
    run.embeddings = detail->stats.output_tuples;
    run.edge_walks = detail->stats.edge_walks;
  }
  return run;
}

void ExpectDispatchEquivalent(const Database& db, const Catalog& cat,
                              const QueryGraph& q, const char* what) {
  for (bool bushy : {false, true}) {
    const KernelRun scalar =
        RunWithDispatch(db, cat, q, /*force_scalar=*/true, 1, bushy);
    for (uint32_t threads : {1u, 2u, 4u}) {
      const KernelRun simd = RunWithDispatch(
          db, cat, q, /*force_scalar=*/false, threads, bushy);
      EXPECT_EQ(simd.rows, scalar.rows)
          << what << " bushy=" << bushy << " threads=" << threads;
      EXPECT_EQ(simd.embeddings, scalar.embeddings)
          << what << " bushy=" << bushy << " threads=" << threads;
      EXPECT_EQ(simd.edge_walks, scalar.edge_walks)
          << what << " bushy=" << bushy << " threads=" << threads;
    }
  }
}

using KernelFig1Test = testutil::Fig1Fixture;
using KernelFig4Test = testutil::Fig4Fixture;

TEST_F(KernelFig1Test, Fig1RowsIdenticalAcrossDispatch) {
  ExpectDispatchEquivalent(db_, cat_, query(), "fig1");
}

TEST_F(KernelFig4Test, Fig4RowsIdenticalAcrossDispatch) {
  ExpectDispatchEquivalent(db_, cat_, query(), "fig4");
}

TEST(KernelEquivalenceTest, DenseSquareRowsIdenticalAcrossDispatch) {
  Database db = MakeRandomGraph(80, 3, 6000, 777);
  Catalog cat = Catalog::Build(db.store());
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?a . }", db);
  ASSERT_TRUE(q.ok());
  ExpectDispatchEquivalent(db, cat, *q, "dense-square");
}

TEST(KernelEquivalenceTest, RandomCyclicInstancesIdenticalAcrossDispatch) {
  Rng rng(20260808);
  for (int trial = 0; trial < 4; ++trial) {
    Database db = MakeRandomGraph(30, 3, 400, 5400 + trial);
    Catalog cat = Catalog::Build(db.store());
    QueryGraph q = MakeRandomQuery(rng, 3 + rng.Uniform(3), 5, 3);
    ExpectDispatchEquivalent(db, cat, q, "random");
  }
}

}  // namespace
}  // namespace wireframe
