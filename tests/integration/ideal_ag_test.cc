#include <set>

#include <gtest/gtest.h>

#include "core/wireframe.h"
#include "datagen/synthetic.h"
#include "query/shape.h"
#include "util/hash.h"

namespace wireframe {
namespace {

/// Ground-truth ideal answer graph: the union of per-edge projections of
/// the embedding set (paper §2's definition of the minimum sufficient
/// subset). Computed from the oracle engine's collected embeddings.
std::vector<std::set<uint64_t>> IdealAgFromEmbeddings(
    const Database& db, const Catalog& cat, const QueryGraph& q) {
  auto oracle = MakeEngine("NJ");
  CollectingSink sink;
  auto stats = oracle->Run(db, cat, q, EngineOptions{}, &sink);
  EXPECT_TRUE(stats.ok());
  std::vector<std::set<uint64_t>> ideal(q.NumEdges());
  for (const std::vector<NodeId>& row : sink.rows()) {
    for (uint32_t e = 0; e < q.NumEdges(); ++e) {
      ideal[e].insert(PackPair(row[q.Edge(e).src], row[q.Edge(e).dst]));
    }
  }
  return ideal;
}

std::vector<std::set<uint64_t>> WireframeAg(const Database& db,
                                            const Catalog& cat,
                                            const QueryGraph& q,
                                            WireframeOptions options) {
  WireframeEngine engine(options);
  CountingSink sink;
  auto detail = engine.RunDetailed(db, cat, q, EngineOptions{}, &sink);
  EXPECT_TRUE(detail.ok()) << detail.status().ToString();
  std::vector<std::set<uint64_t>> ag(q.NumEdges());
  for (uint32_t e = 0; e < q.NumEdges(); ++e) {
    detail->ag->Set(e).ForEachPair(
        [&](NodeId u, NodeId v) { ag[e].insert(PackPair(u, v)); });
  }
  return ag;
}

// The central correctness claim of the paper, as a property test:
// for acyclic CQs, answer-graph generation with node burnback produces
// exactly the ideal answer graph (the union of embedding projections).
TEST(IdealAgTest, AcyclicNodeBurnbackYieldsIdealAg) {
  Rng rng(31337);
  int checked = 0;
  for (int trial = 0; trial < 80 && checked < 20; ++trial) {
    QueryGraph q = MakeRandomQuery(rng, 2 + rng.Uniform(4), 6, 3);
    if (!IsAcyclic(q)) continue;
    ++checked;
    Database db = MakeRandomGraph(22, 3, 150, 2000 + trial);
    Catalog cat = Catalog::Build(db.store());
    auto ideal = IdealAgFromEmbeddings(db, cat, q);
    auto ag = WireframeAg(db, cat, q, WireframeOptions{});
    for (uint32_t e = 0; e < q.NumEdges(); ++e) {
      EXPECT_EQ(ag[e], ideal[e]) << "trial " << trial << " edge " << e;
    }
  }
  EXPECT_GE(checked, 20);
}

// For cyclic CQs: node burnback gives a superset of the ideal AG;
// edge burnback (with triangulation) restores exact idealness.
TEST(IdealAgTest, CyclicEdgeBurnbackYieldsIdealAg) {
  Rng rng(5150);
  int checked = 0;
  int strict_supersets = 0;
  for (int trial = 0; trial < 120 && checked < 15; ++trial) {
    QueryGraph q = MakeRandomQuery(rng, 4, 4, 3);
    QueryShape shape = AnalyzeShape(q);
    if (shape.acyclic) continue;
    // The edge-burnback guarantee covers triangulated simple cycles of
    // length >= 3; skip tangles with overlapping cycles and parallel-edge
    // 2-cycles (documented scope).
    if (shape.cycles.size() != 1 || shape.cycles[0].Length() < 3) continue;
    ++checked;
    Database db = MakeRandomGraph(18, 3, 170, 4000 + trial);
    Catalog cat = Catalog::Build(db.store());
    auto ideal = IdealAgFromEmbeddings(db, cat, q);

    WireframeOptions loose_options;
    loose_options.triangulate = false;
    auto loose = WireframeAg(db, cat, q, loose_options);
    for (uint32_t e = 0; e < q.NumEdges(); ++e) {
      for (uint64_t pair : ideal[e]) {
        EXPECT_TRUE(loose[e].count(pair))
            << "node burnback lost a participating pair";
      }
      if (loose[e].size() > ideal[e].size()) ++strict_supersets;
    }

    WireframeOptions ideal_options;
    ideal_options.triangulate = true;
    ideal_options.edge_burnback = true;
    auto exact = WireframeAg(db, cat, q, ideal_options);
    for (uint32_t e = 0; e < q.NumEdges(); ++e) {
      EXPECT_EQ(exact[e], ideal[e]) << "trial " << trial << " edge " << e;
    }
  }
  EXPECT_GE(checked, 15);
  // Spurious edges must actually occur somewhere, or the test is vacuous.
  EXPECT_GT(strict_supersets, 0);
}

// |iAG| <= |embeddings| * edges, and typically far smaller: sanity-check
// the factorization inequality the paper's Table 1 reports.
TEST(IdealAgTest, AgNeverLargerThanEmbeddingsTimesEdges) {
  Rng rng(11);
  for (int trial = 0; trial < 15; ++trial) {
    QueryGraph q = MakeRandomQuery(rng, 3, 5, 3);
    Database db = MakeRandomGraph(25, 3, 200, 600 + trial);
    Catalog cat = Catalog::Build(db.store());
    WireframeEngine engine;
    CountingSink sink;
    auto stats = engine.Run(db, cat, q, EngineOptions{}, &sink);
    ASSERT_TRUE(stats.ok());
    if (IsAcyclic(q)) {
      EXPECT_LE(stats->ag_pairs, stats->output_tuples * q.NumEdges());
    }
  }
}

}  // namespace
}  // namespace wireframe
