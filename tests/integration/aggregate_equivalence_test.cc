// Aggregate equivalence: every COUNT/GROUP BY/ASK the factorized DP
// answers over the frozen CSR answer graph must be bit-identical to
// enumerate-then-count — across {fixture} x {threads 1,2,4} x
// {pipelined, bushy phase 2} x {cold, cached AG}. The cached round runs
// through the runtime's AgCache, so a hit serving the count with zero
// phase 1 is part of the certified surface.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/wireframe.h"
#include "datagen/synthetic.h"
#include "exec/aggregate_executor.h"
#include "query/parser.h"
#include "runtime/query_runtime.h"
#include "testutil/fixtures.h"

namespace wireframe {
namespace {

/// Enumerate-then-count reference: runs the plain SELECT twin of the
/// aggregate query and folds its rows with the aggregate's own spec.
AggregateResult EnumerateReference(const Database& db, const Catalog& cat,
                                   const std::string& aggregate_sparql,
                                   const std::string& plain_sparql) {
  auto agg_q = SparqlParser::ParseAndBind(aggregate_sparql, db);
  auto plain_q = SparqlParser::ParseAndBind(plain_sparql, db);
  EXPECT_TRUE(agg_q.ok() && plain_q.ok());
  EnumeratingAggregateSink fold(agg_q->aggregate());
  WireframeEngine engine;
  auto detail = engine.RunDetailed(db, cat, *plain_q, EngineOptions{}, &fold);
  EXPECT_TRUE(detail.ok()) << detail.status().ToString();
  return fold.TakeResult();
}

/// One full equivalence sweep for a single (db, query) cell.
void ExpectAggregateEquivalent(const Database& db, const Catalog& cat,
                               const std::string& aggregate_sparql,
                               const std::string& plain_sparql,
                               const char* what) {
  const AggregateResult reference =
      EnumerateReference(db, cat, aggregate_sparql, plain_sparql);
  auto q = SparqlParser::ParseAndBind(aggregate_sparql, db);
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  for (bool bushy : {false, true}) {
    for (uint32_t threads : {1u, 2u, 4u}) {
      WireframeOptions wf_options;
      wf_options.bushy_phase2 = bushy;
      WireframeEngine engine(wf_options);
      EngineOptions options;
      options.threads = threads;
      CollectingAggregateSink sink;
      auto detail = engine.RunDetailed(db, cat, *q, options, &sink);
      ASSERT_TRUE(detail.ok())
          << what << ": " << detail.status().ToString();
      ASSERT_TRUE(detail->has_aggregate) << what;
      EXPECT_EQ(detail->aggregate.value, reference.value)
          << what << " bushy=" << bushy << " threads=" << threads;
      EXPECT_EQ(detail->aggregate.groups, reference.groups)
          << what << " bushy=" << bushy << " threads=" << threads;
    }
  }

  // Cold then cached: round 0 fills the AgCache, round 1 must hit and
  // serve the identical answer off the shared frozen AG.
  runtime::RuntimeOptions runtime_options;
  runtime_options.pool_threads = 2;
  runtime_options.admission.ag_cache_bytes = 32ull << 20;
  runtime::QueryRuntime runtime(runtime_options);
  for (int round = 0; round < 2; ++round) {
    runtime::QueryRequest request;
    request.db = &db;
    request.catalog = &cat;
    request.query = *q;
    auto session = runtime.Submit(std::move(request));
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    (*session)->Wait();
    ASSERT_EQ((*session)->outcome(), runtime::QueryOutcome::kCompleted)
        << what << " round " << round;
    EXPECT_EQ((*session)->cache_hit(), round == 1)
        << what << " round " << round;
    ASSERT_TRUE((*session)->has_aggregate()) << what;
    EXPECT_EQ((*session)->aggregate().value, reference.value)
        << what << " round " << round;
    EXPECT_EQ((*session)->aggregate().groups, reference.groups)
        << what << " round " << round;
  }
}

using AggregateEquivalenceFig1Test = testutil::Fig1Fixture;
using AggregateEquivalenceFig4Test = testutil::Fig4Fixture;

TEST_F(AggregateEquivalenceFig1Test, CountAndGroupByMatchEnumeration) {
  const std::string plain =
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }";
  ExpectAggregateEquivalent(
      db_, cat_,
      "select (count(*) as ?c) where { ?w A ?x . ?x B ?y . ?y C ?z . }",
      plain, "fig1-count");
  ExpectAggregateEquivalent(
      db_, cat_,
      "select ?w (count(*) as ?c) where "
      "{ ?w A ?x . ?x B ?y . ?y C ?z . } group by ?w",
      plain, "fig1-groupby");
  ExpectAggregateEquivalent(
      db_, cat_,
      "select (count(distinct ?y) as ?c) where "
      "{ ?w A ?x . ?x B ?y . ?y C ?z . }",
      plain, "fig1-distinct");
}

TEST_F(AggregateEquivalenceFig4Test, CyclicCountAndAskMatchEnumeration) {
  const std::string plain =
      "select * where { ?x A ?e . ?x B ?z . ?e C ?y . ?y D ?z . }";
  ExpectAggregateEquivalent(
      db_, cat_,
      "select (count(*) as ?c) where "
      "{ ?x A ?e . ?x B ?z . ?e C ?y . ?y D ?z . }",
      plain, "fig4-count");
  ExpectAggregateEquivalent(
      db_, cat_,
      "ask { ?x A ?e . ?x B ?z . ?e C ?y . ?y D ?z . }", plain, "fig4-ask");
}

TEST(AggregateEquivalenceTest, RandomSquaresMatchEnumeration) {
  for (int trial = 0; trial < 3; ++trial) {
    Database db = MakeRandomGraph(40, 3, 1200, 5200 + trial);
    Catalog cat = Catalog::Build(db.store());
    const std::string plain =
        "select * where { ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?a . }";
    ExpectAggregateEquivalent(
        db, cat,
        "select (count(*) as ?c) where "
        "{ ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?a . }",
        plain, "square-count");
    ExpectAggregateEquivalent(
        db, cat,
        "select ?a (count(*) as ?c) where "
        "{ ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?a . } group by ?a",
        plain, "square-groupby");
  }
}

// Dense square: the blowup cell where the DP's AG-size-bound cost
// visibly diverges from enumeration's output-size-bound cost — the
// count must not.
TEST(AggregateEquivalenceTest, DenseSquareMatchesEnumeration) {
  Database db = MakeRandomGraph(80, 3, 6000, 777);
  Catalog cat = Catalog::Build(db.store());
  ExpectAggregateEquivalent(
      db, cat,
      "select (count(*) as ?c) where "
      "{ ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?a . }",
      "select * where { ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?a . }",
      "dense-square");
}

// A 5-cycle has two chords after triangulation — outside the single-
// chord DP, so the executor falls back to enumerate-then-count. The
// fallback must sweep the same cells (bushy, threads, cache) and agree.
TEST(AggregateEquivalenceTest, FiveCycleFallbackMatchesEnumeration) {
  Database db = MakeRandomGraph(30, 3, 500, 61);
  Catalog cat = Catalog::Build(db.store());
  ExpectAggregateEquivalent(
      db, cat,
      "select (count(*) as ?c) where "
      "{ ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?e . ?e p1 ?a . }",
      "select * where "
      "{ ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?e . ?e p1 ?a . }",
      "five-cycle");
}

}  // namespace
}  // namespace wireframe
