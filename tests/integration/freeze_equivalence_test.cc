// Freeze equivalence: running phase 2 over the frozen CSR AnswerGraph
// must produce exactly the embeddings and |AG| of the mutable hash form
// — and both must agree with every baseline engine — on the paper
// fixtures and randomized workloads, serial and parallel.

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/wireframe.h"
#include "datagen/synthetic.h"
#include "exec/engine.h"
#include "query/parser.h"
#include "query/shape.h"
#include "testutil/fixtures.h"
#include "util/hash.h"

namespace wireframe {
namespace {

struct WfRun {
  std::set<std::vector<NodeId>> rows;
  uint64_t ag_pairs = 0;
  std::vector<std::set<uint64_t>> edge_sets;
  bool frozen = false;
};

WfRun RunWf(const Database& db, const Catalog& cat, const QueryGraph& q,
            bool freeze, uint32_t threads = 1, bool bushy = false) {
  WireframeOptions wf_options;
  wf_options.freeze_ag = freeze;
  wf_options.bushy_phase2 = bushy;
  WireframeEngine engine(wf_options);
  CollectingSink sink;
  EngineOptions options;
  options.threads = threads;
  auto detail = engine.RunDetailed(db, cat, q, options, &sink);
  EXPECT_TRUE(detail.ok()) << detail.status().ToString();
  WfRun run;
  run.rows = {sink.rows().begin(), sink.rows().end()};
  if (detail.ok()) {
    run.ag_pairs = detail->stats.ag_pairs;
    run.frozen = detail->ag->IsFrozen();
    run.edge_sets.resize(detail->ag->NumEdgeSets());
    for (uint32_t e = 0; e < detail->ag->NumEdgeSets(); ++e) {
      detail->ag->Set(e).ForEachPair([&](NodeId u, NodeId v) {
        run.edge_sets[e].insert(PackPair(u, v));
      });
    }
  }
  return run;
}

void ExpectFreezeEquivalent(const Database& db, const Catalog& cat,
                            const QueryGraph& q, const char* what) {
  const WfRun unfrozen = RunWf(db, cat, q, /*freeze=*/false);
  EXPECT_FALSE(unfrozen.frozen);
  for (uint32_t threads : {1u, 2u, 4u}) {
    const WfRun frozen = RunWf(db, cat, q, /*freeze=*/true, threads);
    EXPECT_TRUE(frozen.frozen) << what;
    EXPECT_EQ(frozen.rows, unfrozen.rows)
        << what << " threads " << threads;
    EXPECT_EQ(frozen.ag_pairs, unfrozen.ag_pairs)
        << what << " threads " << threads;
    ASSERT_EQ(frozen.edge_sets.size(), unfrozen.edge_sets.size()) << what;
    for (size_t e = 0; e < unfrozen.edge_sets.size(); ++e) {
      EXPECT_EQ(frozen.edge_sets[e], unfrozen.edge_sets[e])
          << what << " edge set " << e << " threads " << threads;
    }
  }
  // All five engines agree: the four baselines against the frozen rows.
  for (const char* name : {"PG", "VT", "MD", "NJ"}) {
    auto engine = MakeEngine(name);
    CollectingSink sink;
    auto stats = engine->Run(db, cat, q, EngineOptions{}, &sink);
    EXPECT_TRUE(stats.ok()) << name << ": " << stats.status().ToString();
    const std::set<std::vector<NodeId>> rows(sink.rows().begin(),
                                             sink.rows().end());
    EXPECT_EQ(rows, unfrozen.rows) << what << " engine " << name;
  }
}

using FreezeFig1Test = testutil::Fig1Fixture;
using FreezeFig4Test = testutil::Fig4Fixture;

TEST_F(FreezeFig1Test, Fig1FrozenMatchesUnfrozenAndBaselines) {
  ExpectFreezeEquivalent(db_, cat_, query(), "fig1");
}

TEST_F(FreezeFig4Test, Fig4FrozenMatchesUnfrozenAndBaselines) {
  ExpectFreezeEquivalent(db_, cat_, query(), "fig4");
}

TEST(FreezeEquivalenceTest, RandomInstancesMatchAcrossAllEngines) {
  Rng rng(20260801);
  int cyclic_seen = 0, acyclic_seen = 0;
  for (int trial = 0; trial < 8; ++trial) {
    Database db = MakeRandomGraph(30, 3, 300, 9200 + trial);
    Catalog cat = Catalog::Build(db.store());
    QueryGraph q = MakeRandomQuery(rng, 2 + rng.Uniform(3), 5, 3);
    (IsAcyclic(q) ? acyclic_seen : cyclic_seen) += 1;
    ExpectFreezeEquivalent(db, cat, q, "random");
  }
  EXPECT_GT(cyclic_seen + acyclic_seen, 0);
}

TEST(FreezeEquivalenceTest, ChainBlowupMatches) {
  Database db = MakeChainBlowupGraph(200, 200, /*noise=*/30);
  Catalog cat = Catalog::Build(db.store());
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", db);
  ASSERT_TRUE(q.ok());
  const WfRun unfrozen = RunWf(db, cat, *q, /*freeze=*/false);
  const WfRun frozen = RunWf(db, cat, *q, /*freeze=*/true);
  EXPECT_EQ(frozen.rows.size(), 200u * 200u);
  EXPECT_EQ(frozen.rows, unfrozen.rows);
  EXPECT_EQ(frozen.ag_pairs, unfrozen.ag_pairs);
}

// The bushy executor's leaf scans read ForEachPair off the frozen CSR.
TEST(FreezeEquivalenceTest, BushyExecutorMatchesOverFrozenAg) {
  Rng rng(607);
  for (int trial = 0; trial < 4; ++trial) {
    Database db = MakeRandomGraph(30, 3, 300, 4100 + trial);
    Catalog cat = Catalog::Build(db.store());
    QueryGraph q = MakeRandomQuery(rng, 3 + rng.Uniform(3), 5, 3);
    const WfRun unfrozen =
        RunWf(db, cat, q, /*freeze=*/false, 1, /*bushy=*/true);
    for (uint32_t threads : {1u, 4u}) {
      const WfRun frozen =
          RunWf(db, cat, q, /*freeze=*/true, threads, /*bushy=*/true);
      EXPECT_EQ(frozen.rows, unfrozen.rows)
          << "trial " << trial << " threads " << threads;
    }
  }
}

// Chord filters in phase 2 probe the frozen chord sets (binary search
// instead of hash probes) — cyclic results must not move.
TEST(FreezeEquivalenceTest, DenseSquareChordFiltersMatch) {
  Database db = MakeRandomGraph(80, 3, 6000, 777);
  Catalog cat = Catalog::Build(db.store());
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?a p0 ?b . ?b p1 ?c . ?c p2 ?d . ?d p0 ?a . }", db);
  ASSERT_TRUE(q.ok());
  const WfRun unfrozen = RunWf(db, cat, *q, /*freeze=*/false);
  for (uint32_t threads : {1u, 4u}) {
    const WfRun frozen = RunWf(db, cat, *q, /*freeze=*/true, threads);
    EXPECT_EQ(frozen.rows, unfrozen.rows) << "threads " << threads;
    EXPECT_EQ(frozen.ag_pairs, unfrozen.ag_pairs);
  }
}

}  // namespace
}  // namespace wireframe
