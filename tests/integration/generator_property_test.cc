// Property tests of answer-graph generation across shapes, seeds, and
// option combinations.

#include <gtest/gtest.h>

#include "catalog/estimator.h"
#include "core/generator.h"
#include "datagen/synthetic.h"
#include "planner/edgifier.h"
#include "query/shape.h"

namespace wireframe {
namespace {

class GeneratorPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

AgPlan PlanWithChords(const QueryGraph& q, const Catalog& cat) {
  CardinalityEstimator est(cat);
  Edgifier edgifier(q, est);
  auto plan = edgifier.PlanEdgeOrder();
  EXPECT_TRUE(plan.ok());
  QueryShape shape = AnalyzeShape(q);
  if (!shape.acyclic) {
    Triangulator tri(q, est);
    auto chords = tri.Triangulate(shape);
    EXPECT_TRUE(chords.ok());
    plan->chords = std::move(chords->chords);
    plan->base_triangles = std::move(chords->base_triangles);
    plan->base_triangle_closing_edge =
        std::move(chords->base_triangle_closing_edge);
  }
  return std::move(plan).value();
}

TEST_P(GeneratorPropertyTest, InvariantsHoldOnRandomInstances) {
  auto [seed, lookahead] = GetParam();
  Rng rng(seed);
  for (int trial = 0; trial < 15; ++trial) {
    QueryGraph q = MakeRandomQuery(rng, 2 + rng.Uniform(4), 5, 3);
    Database db = MakeRandomGraph(25, 3, 180, seed * 100 + trial);
    Catalog cat = Catalog::Build(db.store());
    AgPlan plan = PlanWithChords(q, cat);

    GeneratorOptions options;
    options.lookahead = lookahead;
    AgGenerator gen(db, cat);
    auto result = gen.Generate(q, plan, options);
    ASSERT_TRUE(result.ok());
    const AnswerGraph& ag = *result->ag;

    // 1. Every AG pair is a real data edge with the right label.
    for (uint32_t e = 0; e < q.NumEdges(); ++e) {
      const QueryEdge& qe = q.Edge(e);
      ag.Set(e).ForEachPair([&](NodeId u, NodeId v) {
        EXPECT_TRUE(db.store().HasTriple(u, qe.label, v));
      });
    }
    // 2. Arc consistency: every pair endpoint is alive.
    for (uint32_t e = 0; e < ag.NumEdgeSets(); ++e) {
      if (!ag.IsMaterialized(e)) continue;
      ag.Set(e).ForEachPair([&](NodeId u, NodeId v) {
        EXPECT_TRUE(ag.IsAlive(ag.SrcVar(e), u));
        EXPECT_TRUE(ag.IsAlive(ag.DstVar(e), v));
      });
    }
    // 3. Edge sets are compacted after generation.
    for (uint32_t e = 0; e < ag.NumEdgeSets(); ++e) {
      EXPECT_TRUE(ag.Set(e).IsCompact());
    }
    // 4. Walk accounting: at least one walk per surviving pair.
    EXPECT_GE(result->edge_walks, ag.TotalQueryEdgePairs());
  }
}

TEST_P(GeneratorPropertyTest, LookaheadNeverChangesTheAg) {
  auto [seed, lookahead] = GetParam();
  if (lookahead) GTEST_SKIP() << "pairing handled by the other param";
  Rng rng(seed + 77);
  for (int trial = 0; trial < 10; ++trial) {
    QueryGraph q = MakeRandomQuery(rng, 2 + rng.Uniform(4), 5, 3);
    Database db = MakeRandomGraph(22, 3, 160, seed * 31 + trial);
    Catalog cat = Catalog::Build(db.store());
    AgPlan plan = PlanWithChords(q, cat);

    AgGenerator gen(db, cat);
    GeneratorOptions plain, ahead;
    ahead.lookahead = true;
    auto r1 = gen.Generate(q, plan, plain);
    auto r2 = gen.Generate(q, plan, ahead);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    for (uint32_t e = 0; e < q.NumEdges(); ++e) {
      ASSERT_EQ(r1->ag->Set(e).Size(), r2->ag->Set(e).Size())
          << "seed " << seed << " trial " << trial << " edge " << e;
      r1->ag->Set(e).ForEachPair([&](NodeId u, NodeId v) {
        EXPECT_TRUE(r2->ag->Set(e).Contains(u, v));
      });
    }
  }
}

TEST_P(GeneratorPropertyTest, DeterministicAcrossRuns) {
  auto [seed, lookahead] = GetParam();
  Rng rng(seed + 13);
  QueryGraph q = MakeRandomQuery(rng, 4, 5, 3);
  Database db = MakeRandomGraph(30, 3, 250, seed);
  Catalog cat = Catalog::Build(db.store());
  AgPlan plan = PlanWithChords(q, cat);
  GeneratorOptions options;
  options.lookahead = lookahead;
  AgGenerator gen(db, cat);
  auto r1 = gen.Generate(q, plan, options);
  auto r2 = gen.Generate(q, plan, options);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->edge_walks, r2->edge_walks);
  EXPECT_EQ(r1->pairs_burned, r2->pairs_burned);
  EXPECT_EQ(r1->ag->TotalQueryEdgePairs(), r2->ag->TotalQueryEdgePairs());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneratorPropertyTest,
    ::testing::Combine(::testing::Values(11, 22, 33, 44),
                       ::testing::Bool()),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_lookahead" : "_plain");
    });

}  // namespace
}  // namespace wireframe
