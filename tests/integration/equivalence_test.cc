#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/wireframe.h"
#include "datagen/synthetic.h"
#include "exec/engine.h"
#include "query/shape.h"

namespace wireframe {
namespace {

/// Sorted multiset of result rows (bindings are total, so rows are
/// distinct by construction and a set suffices).
std::set<std::vector<NodeId>> RunToSet(Engine* engine, const Database& db,
                                       const Catalog& cat,
                                       const QueryGraph& q) {
  CollectingSink sink;
  auto stats = engine->Run(db, cat, q, EngineOptions{}, &sink);
  EXPECT_TRUE(stats.ok()) << engine->name() << ": "
                          << stats.status().ToString();
  return {sink.rows().begin(), sink.rows().end()};
}

// Property: every engine (the Wireframe two-phase evaluator and all four
// baseline regimes) computes exactly the same embedding set on random
// graphs and random connected queries, acyclic and cyclic alike.
TEST(EquivalenceTest, AllEnginesAgreeOnRandomInstances) {
  Rng rng(4242);
  int cyclic_seen = 0, acyclic_seen = 0;
  for (int trial = 0; trial < 40; ++trial) {
    Database db = MakeRandomGraph(24, 3, 140, 1000 + trial);
    Catalog cat = Catalog::Build(db.store());
    QueryGraph q = MakeRandomQuery(rng, 2 + rng.Uniform(4), 5, 3);
    if (IsAcyclic(q)) {
      ++acyclic_seen;
    } else {
      ++cyclic_seen;
    }

    auto oracle = MakeEngine("NJ");
    std::set<std::vector<NodeId>> expected =
        RunToSet(oracle.get(), db, cat, q);
    for (const char* name : {"WF", "PG", "VT", "MD"}) {
      auto engine = MakeEngine(name);
      std::set<std::vector<NodeId>> got = RunToSet(engine.get(), db, cat, q);
      EXPECT_EQ(got, expected)
          << "trial " << trial << ": " << name << " disagrees with oracle ("
          << got.size() << " vs " << expected.size() << " rows)";
    }
  }
  // The shape generator must exercise both planner paths.
  EXPECT_GT(cyclic_seen, 3);
  EXPECT_GT(acyclic_seen, 3);
}

// Property: Wireframe's three cyclic configurations (plain, chordified,
// chordified + edge burnback) agree with the oracle.
TEST(EquivalenceTest, WireframeCyclicModesAgree) {
  Rng rng(777);
  int checked = 0;
  for (int trial = 0; trial < 60 && checked < 12; ++trial) {
    QueryGraph q = MakeRandomQuery(rng, 4, 4, 3);
    if (IsAcyclic(q)) continue;
    ++checked;
    Database db = MakeRandomGraph(20, 3, 160, 31 + trial);
    Catalog cat = Catalog::Build(db.store());

    auto oracle = MakeEngine("NJ");
    std::set<std::vector<NodeId>> expected =
        RunToSet(oracle.get(), db, cat, q);

    for (int mode = 0; mode < 3; ++mode) {
      WireframeOptions options;
      options.triangulate = mode >= 1;
      options.edge_burnback = mode == 2;
      WireframeEngine engine(options);
      std::set<std::vector<NodeId>> got =
          RunToSet(&engine, db, cat, q);
      EXPECT_EQ(got, expected) << "trial " << trial << " mode " << mode;
    }
  }
  EXPECT_GE(checked, 12);
}

// Denser graphs stress burnback cascades harder.
TEST(EquivalenceTest, DenseGraphAgreement) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Database db = MakeRandomGraph(12, 2, 200, 500 + trial);
    Catalog cat = Catalog::Build(db.store());
    QueryGraph q = MakeRandomQuery(rng, 4, 4, 2);
    auto oracle = MakeEngine("NJ");
    auto wf = MakeEngine("WF");
    EXPECT_EQ(RunToSet(wf.get(), db, cat, q),
              RunToSet(oracle.get(), db, cat, q))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace wireframe
