#include <set>

#include <gtest/gtest.h>

#include "core/wireframe.h"
#include "datagen/synthetic.h"
#include "query/parser.h"
#include "query/shape.h"
#include "query/templates.h"

namespace wireframe {
namespace {

/// Verifies every emitted binding against the data graph directly: each
/// query edge must map to an actual triple.
class VerifyingSink : public Sink {
 public:
  VerifyingSink(const Database& db, const QueryGraph& q)
      : db_(&db), q_(&q) {}
  bool Emit(const std::vector<NodeId>& binding) override {
    ++count_;
    for (const QueryEdge& e : q_->edges()) {
      EXPECT_TRUE(
          db_->store().HasTriple(binding[e.src], e.label, binding[e.dst]))
          << "emitted binding is not a homomorphic embedding";
    }
    return true;
  }
  uint64_t count() const override { return count_; }

 private:
  const Database* db_;
  const QueryGraph* q_;
  uint64_t count_ = 0;
};

// Parameterized soundness sweep across query shapes.
class ShapeSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ShapeSweepTest, EmbeddingsAreSoundAndDistinct) {
  auto [shape_kind, size] = GetParam();
  QueryTemplate tmpl = [&] {
    switch (shape_kind) {
      case 0:
        return ChainTemplate(size);
      case 1:
        return StarTemplate(size);
      default:
        return CycleTemplate(std::max(3, size));
    }
  }();
  std::vector<LabelId> labels;
  for (uint32_t s = 0; s < tmpl.num_slots; ++s) labels.push_back(s % 3);
  QueryGraph q = tmpl.Instantiate(labels);

  Database db = MakeRandomGraph(30, 3, 250, 9000 + shape_kind * 10 + size);
  Catalog cat = Catalog::Build(db.store());
  WireframeEngine engine;
  VerifyingSink sink(db, q);
  auto stats = engine.Run(db, cat, q, EngineOptions{}, &sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->output_tuples, sink.count());
}

std::string ShapeSweepName(
    const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  static const char* const kKind[] = {"Chain", "Star", "Cycle"};
  return std::string(kKind[std::get<0>(info.param)]) +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeSweepTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1, 2, 3, 4, 5)),
    ShapeSweepName);

// Distinctness: full-width bindings are emitted exactly once.
TEST(PropertiesTest, NoDuplicateEmbeddings) {
  Rng rng(246);
  for (int trial = 0; trial < 20; ++trial) {
    QueryGraph q = MakeRandomQuery(rng, 3, 5, 3);
    Database db = MakeRandomGraph(20, 3, 160, 700 + trial);
    Catalog cat = Catalog::Build(db.store());
    WireframeEngine engine;
    CollectingSink sink;
    ASSERT_TRUE(engine.Run(db, cat, q, EngineOptions{}, &sink).ok());
    std::set<std::vector<NodeId>> unique(sink.rows().begin(),
                                         sink.rows().end());
    EXPECT_EQ(unique.size(), sink.rows().size()) << "trial " << trial;
  }
}

// Monotonicity: adding a pattern can only shrink the result set.
TEST(PropertiesTest, AddingPatternsShrinksResults) {
  Database db = MakeRandomGraph(25, 3, 300, 99);
  Catalog cat = Catalog::Build(db.store());
  WireframeEngine engine;

  uint64_t prev = UINT64_MAX;
  for (uint32_t len = 1; len <= 4; ++len) {
    QueryGraph q = ChainTemplate(len).Instantiate(
        std::vector<LabelId>(len, 0));
    // Re-instantiate with alternating labels so joins are non-trivial.
    QueryGraph q2;
    for (uint32_t i = 0; i <= len; ++i) q2.AddVar("v" + std::to_string(i));
    for (uint32_t i = 0; i < len; ++i) q2.AddEdge(i, i % 2, i + 1);
    CountingSink sink;
    ASSERT_TRUE(engine.Run(db, cat, q2, EngineOptions{}, &sink).ok());
    // Projections of a longer chain's results onto the shorter prefix are
    // a subset, so counts cannot grow faster than fanout; the robust
    // check is: empty prefix => empty extension.
    if (prev == 0) {
      EXPECT_EQ(sink.count(), 0u);
    }
    prev = sink.count();
  }
}

// The AG of a sub-query (prefix of the plan) contains the pairs needed by
// the full query: removing the last pattern never removes support.
TEST(PropertiesTest, SubqueryAgContainsFullQueryProjections) {
  Database db = MakeRandomGraph(25, 2, 220, 55);
  Catalog cat = Catalog::Build(db.store());

  QueryGraph full;
  VarId a = full.AddVar("a"), b = full.AddVar("b"), c = full.AddVar("c");
  full.AddEdge(a, 0, b);
  full.AddEdge(b, 1, c);

  QueryGraph prefix;
  VarId a2 = prefix.AddVar("a"), b2 = prefix.AddVar("b");
  prefix.AddEdge(a2, 0, b2);

  WireframeEngine engine;
  CountingSink sink1, sink2;
  auto full_detail =
      engine.RunDetailed(db, cat, full, EngineOptions{}, &sink1);
  auto prefix_detail =
      engine.RunDetailed(db, cat, prefix, EngineOptions{}, &sink2);
  ASSERT_TRUE(full_detail.ok());
  ASSERT_TRUE(prefix_detail.ok());
  // Every pair the full query kept for edge 0 must appear in the
  // single-pattern query's AG (which is just the label's edge list).
  full_detail->ag->Set(0).ForEachPair([&](NodeId u, NodeId v) {
    EXPECT_TRUE(prefix_detail->ag->Set(0).Contains(u, v));
  });
  EXPECT_LE(full_detail->ag->Set(0).Size(),
            prefix_detail->ag->Set(0).Size());
}

// Projection + DISTINCT through the sink wrapper matches a manual dedup.
TEST(PropertiesTest, DistinctProjectionMatchesManualDedup) {
  Database db = MakeRandomGraph(20, 2, 180, 123);
  Catalog cat = Catalog::Build(db.store());
  QueryGraph q;
  VarId a = q.AddVar("a"), b = q.AddVar("b"), c = q.AddVar("c");
  q.AddEdge(a, 0, b);
  q.AddEdge(b, 1, c);

  WireframeEngine engine;
  CollectingSink all;
  ASSERT_TRUE(engine.Run(db, cat, q, EngineOptions{}, &all).ok());
  std::set<std::vector<NodeId>> manual;
  for (const auto& row : all.rows()) manual.insert({row[a], row[c]});

  CollectingSink projected;
  DistinctProjectingSink wrapper({a, c}, &projected);
  ASSERT_TRUE(engine.Run(db, cat, q, EngineOptions{}, &wrapper).ok());
  EXPECT_EQ(projected.rows().size(), manual.size());
  for (const auto& row : projected.rows()) {
    EXPECT_TRUE(manual.count(row));
  }
}

}  // namespace
}  // namespace wireframe
