// Parallel-vs-serial equivalence: threads=N must produce exactly the
// same embedding multiset and the same |AG| as the serial engine, on the
// paper's fixtures and on randomized workloads. These tests are the
// ThreadSanitizer CI job's main workload, so they deliberately drive
// every parallel code path: phase-1 sharded generation, phase-2 parallel
// enumeration, the bushy executor, and the hash-join baseline's parallel
// build side.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/wireframe.h"
#include "datagen/synthetic.h"
#include "exec/engine.h"
#include "query/parser.h"
#include "query/shape.h"
#include "testutil/fixtures.h"

namespace wireframe {
namespace {

struct WfRun {
  std::set<std::vector<NodeId>> rows;
  uint64_t ag_pairs = 0;
  uint64_t output_tuples = 0;
};

WfRun RunWf(const Database& db, const Catalog& cat, const QueryGraph& q,
            uint32_t threads, WireframeOptions wf_options = {}) {
  WireframeEngine engine(wf_options);
  CollectingSink sink;
  EngineOptions options;
  options.threads = threads;
  auto detail = engine.RunDetailed(db, cat, q, options, &sink);
  EXPECT_TRUE(detail.ok()) << detail.status().ToString();
  WfRun run;
  run.rows = {sink.rows().begin(), sink.rows().end()};
  if (detail.ok()) {
    run.ag_pairs = detail->stats.ag_pairs;
    run.output_tuples = detail->stats.output_tuples;
  }
  return run;
}

std::set<std::vector<NodeId>> RunEngine(const char* name, const Database& db,
                                        const Catalog& cat,
                                        const QueryGraph& q,
                                        uint32_t threads) {
  auto engine = MakeEngine(name);
  CollectingSink sink;
  EngineOptions options;
  options.threads = threads;
  auto stats = engine->Run(db, cat, q, options, &sink);
  EXPECT_TRUE(stats.ok()) << name << ": " << stats.status().ToString();
  return {sink.rows().begin(), sink.rows().end()};
}

using ParallelFig1Test = testutil::Fig1Fixture;
using ParallelFig4Test = testutil::Fig4Fixture;

TEST_F(ParallelFig1Test, ThreadCountsAgreeOnFig1) {
  const WfRun serial = RunWf(db_, cat_, query(), 1);
  EXPECT_EQ(serial.rows.size(), 12u);
  EXPECT_EQ(serial.ag_pairs, 8u);
  for (uint32_t threads : {2u, 4u}) {
    const WfRun parallel = RunWf(db_, cat_, query(), threads);
    EXPECT_EQ(parallel.rows, serial.rows) << "threads=" << threads;
    EXPECT_EQ(parallel.ag_pairs, serial.ag_pairs) << "threads=" << threads;
    EXPECT_EQ(parallel.output_tuples, serial.output_tuples);
  }
}

TEST_F(ParallelFig4Test, ThreadCountsAgreeOnFig4Cyclic) {
  const WfRun serial = RunWf(db_, cat_, query(), 1);
  EXPECT_EQ(serial.rows.size(), 2u);
  for (uint32_t threads : {2u, 4u}) {
    const WfRun parallel = RunWf(db_, cat_, query(), threads);
    EXPECT_EQ(parallel.rows, serial.rows) << "threads=" << threads;
    EXPECT_EQ(parallel.ag_pairs, serial.ag_pairs) << "threads=" << threads;
  }
}

// A workload big enough that every level's frontier spans many morsels,
// so real cross-thread sharding (not the inline fallback) is exercised.
TEST(ParallelEquivalenceTest, ChainBlowupSpansManyMorsels) {
  Database db = MakeChainBlowupGraph(600, 600, /*noise=*/50);
  Catalog cat = Catalog::Build(db.store());
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", db);
  ASSERT_TRUE(q.ok());

  const WfRun serial = RunWf(db, cat, *q, 1);
  EXPECT_EQ(serial.rows.size(), 600u * 600u);
  for (uint32_t threads : {2u, 4u}) {
    const WfRun parallel = RunWf(db, cat, *q, threads);
    EXPECT_EQ(parallel.rows.size(), serial.rows.size());
    EXPECT_EQ(parallel.rows, serial.rows) << "threads=" << threads;
    EXPECT_EQ(parallel.ag_pairs, serial.ag_pairs) << "threads=" << threads;
  }
}

// Randomized graphs and random connected queries, acyclic and cyclic:
// identical embedding sets and identical |AG| for threads in {1, 2, 4}.
TEST(ParallelEquivalenceTest, RandomInstancesAgreeAcrossThreadCounts) {
  Rng rng(20260730);
  int cyclic_seen = 0, acyclic_seen = 0;
  for (int trial = 0; trial < 12; ++trial) {
    Database db = MakeRandomGraph(40, 3, 420, 9000 + trial);
    Catalog cat = Catalog::Build(db.store());
    QueryGraph q = MakeRandomQuery(rng, 2 + rng.Uniform(4), 5, 3);
    (IsAcyclic(q) ? acyclic_seen : cyclic_seen) += 1;

    const WfRun serial = RunWf(db, cat, q, 1);
    for (uint32_t threads : {2u, 4u}) {
      const WfRun parallel = RunWf(db, cat, q, threads);
      EXPECT_EQ(parallel.rows, serial.rows)
          << "trial " << trial << " threads " << threads;
      EXPECT_EQ(parallel.ag_pairs, serial.ag_pairs)
          << "trial " << trial << " threads " << threads;
    }
  }
  // Both planner paths must have been exercised.
  EXPECT_GT(cyclic_seen, 0);
  EXPECT_GT(acyclic_seen, 0);
}

// The bushy phase-2 executor parallelizes its probe and emit loops; its
// intermediates are bit-identical to the serial run, so the embedding
// set must match at every thread count.
TEST(ParallelEquivalenceTest, BushyExecutorAgreesAcrossThreadCounts) {
  Rng rng(555);
  WireframeOptions bushy;
  bushy.bushy_phase2 = true;
  for (int trial = 0; trial < 6; ++trial) {
    Database db = MakeRandomGraph(30, 3, 300, 4000 + trial);
    Catalog cat = Catalog::Build(db.store());
    QueryGraph q = MakeRandomQuery(rng, 3 + rng.Uniform(3), 5, 3);

    const WfRun serial = RunWf(db, cat, q, 1, bushy);
    for (uint32_t threads : {2u, 4u}) {
      const WfRun parallel = RunWf(db, cat, q, threads, bushy);
      EXPECT_EQ(parallel.rows, serial.rows)
          << "trial " << trial << " threads " << threads;
    }
  }
}

// The hash-join baseline's parallel build side (Table-1 fairness).
TEST(ParallelEquivalenceTest, HashJoinBaselineAgreesAcrossThreadCounts) {
  Database blowup = MakeChainBlowupGraph(300, 300, /*noise=*/30);
  Catalog blowup_cat = Catalog::Build(blowup.store());
  auto chain = SparqlParser::ParseAndBind(
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", blowup);
  ASSERT_TRUE(chain.ok());
  const auto serial_chain = RunEngine("PG", blowup, blowup_cat, *chain, 1);
  EXPECT_EQ(RunEngine("PG", blowup, blowup_cat, *chain, 4), serial_chain);

  Rng rng(31337);
  for (int trial = 0; trial < 6; ++trial) {
    Database db = MakeRandomGraph(30, 3, 360, 7000 + trial);
    Catalog cat = Catalog::Build(db.store());
    QueryGraph q = MakeRandomQuery(rng, 2 + rng.Uniform(3), 5, 3);
    const auto serial = RunEngine("PG", db, cat, q, 1);
    EXPECT_EQ(RunEngine("PG", db, cat, q, 4), serial) << "trial " << trial;
  }
}

// LIMIT-style consumers: a declined row must stop every worker, and the
// inner sink must never see more rows than it accepted.
TEST(ParallelEquivalenceTest, LimitSinkStopsParallelEnumeration) {
  Database db = MakeChainBlowupGraph(200, 200, /*noise=*/0);
  Catalog cat = Catalog::Build(db.store());
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", db);
  ASSERT_TRUE(q.ok());
  WireframeEngine engine;
  LimitSink sink(10);
  EngineOptions options;
  options.threads = 4;
  auto stats = engine.Run(db, cat, *q, options, &sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(sink.count(), 10u);
}

// Timeouts must surface promptly from inside the parallel loops.
TEST(ParallelEquivalenceTest, ExpiredDeadlineTimesOutInParallel) {
  Database db = MakeChainBlowupGraph(400, 400, /*noise=*/20);
  Catalog cat = Catalog::Build(db.store());
  auto q = SparqlParser::ParseAndBind(
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }", db);
  ASSERT_TRUE(q.ok());
  WireframeEngine engine;
  CountingSink sink;
  EngineOptions options;
  options.threads = 4;
  options.deadline = Deadline::AlreadyExpired();
  auto stats = engine.Run(db, cat, *q, options, &sink);
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsTimedOut()) << stats.status().ToString();
}

}  // namespace
}  // namespace wireframe
