#include "benchlib/harness.h"

#include <sstream>

#include <gtest/gtest.h>

#include "datagen/figures.h"
#include "query/parser.h"

namespace wireframe {
namespace {

class HarnessTest : public ::testing::Test {
 protected:
  HarnessTest() : db_(MakeFig1Graph()), cat_(Catalog::Build(db_.store())) {}

  QueryGraph Chain() {
    auto q = MakeFig1Query(db_);
    EXPECT_TRUE(q.ok());
    return std::move(q).value();
  }

  Database db_;
  Catalog cat_;
};

TEST_F(HarnessTest, RunCellReportsStats) {
  BenchConfig config;
  config.repetitions = 2;
  config.timeout_seconds = 30;
  Table1Harness harness(db_, cat_, config);
  BenchCell cell = harness.RunCell(Chain(), "WF");
  EXPECT_TRUE(cell.ok);
  EXPECT_FALSE(cell.timed_out);
  EXPECT_EQ(cell.stats.output_tuples, kFig1Embeddings);
  EXPECT_EQ(cell.stats.ag_pairs, kFig1IdealAgEdges);
  EXPECT_GE(cell.seconds, 0.0);
}

TEST_F(HarnessTest, RunCellMarksExpiredDeadline) {
  BenchConfig config;
  config.repetitions = 1;
  config.timeout_seconds = -1.0;  // already expired
  Table1Harness harness(db_, cat_, config);
  // MD materializes and checks the deadline between steps, so even the
  // tiny Fig-1 instance notices the expiry.
  BenchCell cell = harness.RunCell(Chain(), "MD");
  EXPECT_FALSE(cell.ok);
  EXPECT_TRUE(cell.timed_out);
  EXPECT_FALSE(cell.error.empty());
}

TEST_F(HarnessTest, SuiteRendersEveryRowAndColumn) {
  BenchConfig config;
  config.engines = {"WF", "NJ", "PG"};
  config.repetitions = 1;
  config.timeout_seconds = 30;
  Table1Harness harness(db_, cat_, config);
  std::vector<BenchQuery> queries;
  queries.push_back({"1", "A/B/C", Chain()});
  queries.push_back({"2", "A/B/C again", Chain()});
  std::ostringstream os;
  harness.RunSuite(queries, os);
  const std::string out = os.str();
  for (const char* needle :
       {"WF", "NJ", "PG", "|AG|", "|Embeddings|", "A/B/C", "12", "8"}) {
    EXPECT_NE(out.find(needle), std::string::npos) << needle;
  }
}

TEST_F(HarnessTest, UnknownEngineChecks) {
  BenchConfig config;
  Table1Harness harness(db_, cat_, config);
  EXPECT_DEATH(harness.RunCell(Chain(), "XX"), "unknown engine");
}

}  // namespace
}  // namespace wireframe
