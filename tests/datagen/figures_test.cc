#include "datagen/figures.h"

#include <gtest/gtest.h>

namespace wireframe {
namespace {

TEST(Fig1GraphTest, TripleInventory) {
  Database db = MakeFig1Graph();
  EXPECT_EQ(db.store().NumTriples(), 11u);
  EXPECT_EQ(db.labels().Size(), 3u);
  EXPECT_EQ(db.store().PredicateCardinality(*db.LabelOf("A")), 4u);
  EXPECT_EQ(db.store().PredicateCardinality(*db.LabelOf("B")), 2u);
  EXPECT_EQ(db.store().PredicateCardinality(*db.LabelOf("C")), 5u);
}

TEST(Fig1GraphTest, QueryBindsAsChain) {
  Database db = MakeFig1Graph();
  auto q = MakeFig1Query(db);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->NumVars(), 4u);
  EXPECT_EQ(q->NumEdges(), 3u);
  EXPECT_EQ(q->VarName(0), "w");
  EXPECT_EQ(q->VarName(3), "z");
}

TEST(Fig1GraphTest, KeyEdgesPresent) {
  Database db = MakeFig1Graph();
  auto n = [&](const char* s) { return *db.NodeOf(s); };
  EXPECT_TRUE(db.store().HasTriple(n("n1"), *db.LabelOf("A"), n("n5")));
  EXPECT_TRUE(db.store().HasTriple(n("n4"), *db.LabelOf("A"), n("n6")));
  EXPECT_TRUE(db.store().HasTriple(n("n6"), *db.LabelOf("B"), n("n10")));
  EXPECT_TRUE(db.store().HasTriple(n("n8"), *db.LabelOf("C"), n("n11")));
}

TEST(Fig4GraphTest, TripleInventory) {
  Database db = MakeFig4Graph();
  EXPECT_EQ(db.store().NumTriples(), 10u);
  EXPECT_EQ(db.labels().Size(), 4u);
  EXPECT_EQ(db.store().PredicateCardinality(*db.LabelOf("D")), 4u);
}

TEST(Fig4GraphTest, SpuriousEdgesExist) {
  Database db = MakeFig4Graph();
  auto n = [&](const char* s) { return *db.NodeOf(s); };
  EXPECT_TRUE(db.store().HasTriple(n("n1"), *db.LabelOf("D"), n("n6")));
  EXPECT_TRUE(db.store().HasTriple(n("n5"), *db.LabelOf("D"), n("n2")));
}

TEST(Fig4GraphTest, QueryIsDiamond) {
  Database db = MakeFig4Graph();
  auto q = MakeFig4Query(db);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->NumVars(), 4u);
  EXPECT_EQ(q->NumEdges(), 4u);
  for (VarId v = 0; v < 4; ++v) EXPECT_EQ(q->Degree(v), 2u);
}

}  // namespace
}  // namespace wireframe
