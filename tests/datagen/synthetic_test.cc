#include "datagen/synthetic.h"

#include <gtest/gtest.h>

#include "query/shape.h"

namespace wireframe {
namespace {

TEST(ChainBlowupTest, ExactStructure) {
  Database db = MakeChainBlowupGraph(3, 4, 2);
  // 3 A + 1 B + 4 C core edges, plus 3 noise edges per noise unit.
  EXPECT_EQ(db.store().NumTriples(), 3u + 1 + 4 + 3 * 2);
  EXPECT_EQ(db.store().PredicateCardinality(*db.LabelOf("A")), 5u);
  EXPECT_EQ(db.store().PredicateCardinality(*db.LabelOf("B")), 3u);
  EXPECT_EQ(db.store().PredicateCardinality(*db.LabelOf("C")), 6u);
}

TEST(ChainBlowupTest, NoNoise) {
  Database db = MakeChainBlowupGraph(2, 2);
  EXPECT_EQ(db.store().NumTriples(), 5u);
}

TEST(RandomGraphTest, DeterministicInSeed) {
  Database a = MakeRandomGraph(50, 4, 300, 9);
  Database b = MakeRandomGraph(50, 4, 300, 9);
  ASSERT_EQ(a.store().NumTriples(), b.store().NumTriples());
  for (LabelId p = 0; p < a.store().NumPredicates(); ++p) {
    EXPECT_EQ(a.store().EdgeList(p), b.store().EdgeList(p));
  }
}

TEST(RandomGraphTest, DifferentSeedsDiffer) {
  Database a = MakeRandomGraph(50, 4, 300, 1);
  Database b = MakeRandomGraph(50, 4, 300, 2);
  bool any_difference = a.store().NumTriples() != b.store().NumTriples();
  for (LabelId p = 0; !any_difference && p < 4; ++p) {
    any_difference = a.store().EdgeList(p) != b.store().EdgeList(p);
  }
  EXPECT_TRUE(any_difference);
}

TEST(RandomGraphTest, RespectsBounds) {
  Database db = MakeRandomGraph(30, 3, 500, 7);
  EXPECT_LE(db.store().NumTriples(), 500u);  // dedup may shrink
  EXPECT_LE(db.store().NumPredicates(), 3u);
  EXPECT_LE(db.store().NumNodes(), 30u);
  for (LabelId p = 0; p < db.store().NumPredicates(); ++p) {
    db.store().ForEachEdge(p, [&](NodeId s, NodeId o) {
      EXPECT_NE(s, o) << "self-loops are excluded";
      EXPECT_LT(s, 30u);
      EXPECT_LT(o, 30u);
    });
  }
}

TEST(RandomQueryTest, AlwaysConnected) {
  Rng rng(77);
  for (int i = 0; i < 100; ++i) {
    QueryGraph q = MakeRandomQuery(rng, 1 + rng.Uniform(6), 2 + rng.Uniform(5),
                                   4);
    EXPECT_TRUE(IsConnected(q));
    EXPECT_GE(q.NumEdges(), 1u);
  }
}

TEST(RandomQueryTest, RespectsVarCap) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    QueryGraph q = MakeRandomQuery(rng, 8, 4, 3);
    EXPECT_LE(q.NumVars(), 4u);
    for (const QueryEdge& e : q.edges()) EXPECT_LT(e.label, 3u);
  }
}

TEST(RandomQueryTest, ProducesBothShapes) {
  Rng rng(123);
  bool saw_acyclic = false, saw_cyclic = false;
  for (int i = 0; i < 60 && !(saw_acyclic && saw_cyclic); ++i) {
    // Acyclic needs edges <= vars - 1, so leave var headroom.
    QueryGraph q = MakeRandomQuery(rng, 3 + (i % 3), 8, 3);
    if (IsAcyclic(q)) {
      saw_acyclic = true;
    } else {
      saw_cyclic = true;
    }
  }
  EXPECT_TRUE(saw_acyclic);
  EXPECT_TRUE(saw_cyclic);
}

}  // namespace
}  // namespace wireframe
