#include "datagen/yago_like.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "exec/engine.h"
#include "query/parser.h"
#include "query/shape.h"

namespace wireframe {
namespace {

YagoLikeConfig TestConfig() {
  YagoLikeConfig config;
  config.scale = 0.02;  // ~20k triples: fast enough for unit tests
  config.seed = 7;
  return config;
}

TEST(YagoLikeTest, GeneratesRequestedPredicateCount) {
  YagoLikeInfo info;
  Database db = MakeYagoLike(TestConfig(), &info);
  EXPECT_EQ(db.labels().Size(), 104u);
  EXPECT_GT(db.store().NumTriples(), 1000u);
  EXPECT_GT(info.persons, 0u);
  // info counts generated triples before set-semantics deduplication.
  EXPECT_GE(info.triples, db.store().NumTriples());
}

TEST(YagoLikeTest, DeterministicInSeed) {
  Database a = MakeYagoLike(TestConfig());
  Database b = MakeYagoLike(TestConfig());
  EXPECT_EQ(a.store().NumTriples(), b.store().NumTriples());
  LabelId p = *a.LabelOf("actedIn");
  EXPECT_EQ(a.store().EdgeList(p), b.store().EdgeList(p));
}

TEST(YagoLikeTest, QueryPredicatesPopulated) {
  Database db = MakeYagoLike(TestConfig());
  for (const char* pred :
       {"actedIn", "created", "influences", "diedIn", "wasBornIn", "livesIn",
        "isCitizenOf", "isMarriedTo", "hasChild", "owns", "graduatedFrom",
        "isLeaderOf", "hasWonPrize", "participatedIn", "isAffiliatedTo",
        "wasBornOnDate", "wasCreatedOnDate", "hasDuration", "isLocatedIn",
        "exports", "happenedIn", "isPreferredMeaningOf", "sameAs",
        "linksTo"}) {
    auto label = db.LabelOf(pred);
    ASSERT_TRUE(label.has_value()) << pred;
    EXPECT_GT(db.store().PredicateCardinality(*label), 0u) << pred;
  }
}

TEST(YagoLikeTest, TypedEdgesPointIntoRightClasses) {
  Database db = MakeYagoLike(TestConfig());
  LabelId acted = *db.LabelOf("actedIn");
  db.store().ForEachEdge(acted, [&](NodeId s, NodeId o) {
    EXPECT_EQ(db.nodes().Term(s).rfind("Person_", 0), 0u);
    EXPECT_EQ(db.nodes().Term(o).rfind("Movie_", 0), 0u);
  });
  LabelId located = *db.LabelOf("isLocatedIn");
  db.store().ForEachEdge(located, [&](NodeId s, NodeId o) {
    EXPECT_EQ(db.nodes().Term(s).rfind("City_", 0), 0u);
    EXPECT_EQ(db.nodes().Term(o).rfind("Country_", 0), 0u);
  });
}

TEST(YagoLikeTest, ScaleGrowsTheGraph) {
  YagoLikeConfig small = TestConfig();
  YagoLikeConfig larger = TestConfig();
  larger.scale = 0.06;
  Database a = MakeYagoLike(small);
  Database b = MakeYagoLike(larger);
  EXPECT_GT(b.store().NumTriples(), a.store().NumTriples() * 2);
}

TEST(Table1QueriesTest, AllParseAndBind) {
  Database db = MakeYagoLike(TestConfig());
  std::vector<std::string> queries = Table1Queries();
  ASSERT_EQ(queries.size(), 10u);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto q = SparqlParser::ParseAndBind(queries[i], db);
    ASSERT_TRUE(q.ok()) << "query " << i << ": " << q.status().ToString();
    if (i < 5) {
      EXPECT_EQ(q->NumEdges(), 9u) << "snowflake " << i;
      EXPECT_TRUE(IsAcyclic(*q)) << "snowflake " << i;
    } else {
      EXPECT_EQ(q->NumEdges(), 4u) << "diamond " << i;
      EXPECT_FALSE(IsAcyclic(*q)) << "diamond " << i;
    }
    EXPECT_TRUE(IsConnected(*q));
  }
}

TEST(Fig3QueryTest, BindsAndHasSnowflakeShape) {
  Database db = MakeYagoLike(TestConfig());
  auto q = SparqlParser::ParseAndBind(Fig3Query(), db);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->NumEdges(), 9u);
  EXPECT_EQ(q->NumVars(), 10u);
  EXPECT_TRUE(IsAcyclic(*q));
  EXPECT_EQ(q->Degree(q->FindVar("x")), 3u);
  EXPECT_EQ(q->Degree(q->FindVar("y")), 3u);
}

TEST(Fig3QueryTest, NonEmptyAtModerateScale) {
  YagoLikeConfig config;
  config.scale = 0.1;
  config.seed = 7;
  Database db = MakeYagoLike(config);
  Catalog cat = Catalog::Build(db.store());
  auto q = SparqlParser::ParseAndBind(Fig3Query(), db);
  ASSERT_TRUE(q.ok());
  auto engine = MakeEngine("WF");
  LimitSink sink(1);
  EngineOptions options;
  options.deadline = Deadline::AfterSeconds(30);
  auto stats = engine->Run(db, cat, *q, options, &sink);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(sink.count(), 0u) << "the Fig. 3 workload should have answers";
}

TEST(Table1QueriesTest, RowLabelsExist) {
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_FALSE(Table1RowLabel(i).empty());
  }
  EXPECT_NE(Table1RowLabel(1).find("hasChild"), std::string::npos);
  EXPECT_NE(Table1RowLabel(5).find("livesIn"), std::string::npos);
}

TEST(YagoLikeTest, CatalogBuildsOverFullVocabulary) {
  Database db = MakeYagoLike(TestConfig());
  Catalog cat = Catalog::Build(db.store());
  EXPECT_EQ(cat.num_labels(), db.store().NumPredicates());
  // linksTo joins nearly everything; its self 2-gram must be populated.
  LabelId links = *db.LabelOf("linksTo");
  EXPECT_GT(cat.JoinCount(links, End::kSubject, links, End::kObject), 0u);
}

}  // namespace
}  // namespace wireframe
