// Frame protocol round-trips and rejection paths of net/wire.h. Every
// decoder must (a) reproduce what the encoder wrote bit-exactly,
// (b) reject truncated payloads, and (c) reject trailing garbage —
// a frame that does not parse EXACTLY is malformed, full stop.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/wire.h"

namespace wireframe {
namespace net {
namespace {

TEST(WireHeader, RoundTrip) {
  FrameHeader header;
  header.payload_length = 12345;
  header.type = FrameType::kRowBatch;
  char bytes[kFrameHeaderBytes];
  EncodeFrameHeader(header, bytes);
  auto decoded = DecodeFrameHeader(bytes, kDefaultMaxFrameBytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->payload_length, 12345u);
  EXPECT_EQ(decoded->version, kWireVersion);
  EXPECT_EQ(decoded->type, FrameType::kRowBatch);
}

TEST(WireHeader, RejectsBadVersion) {
  FrameHeader header;
  header.type = FrameType::kQuery;
  char bytes[kFrameHeaderBytes];
  EncodeFrameHeader(header, bytes);
  bytes[4] = 99;
  auto decoded = DecodeFrameHeader(bytes, kDefaultMaxFrameBytes);
  EXPECT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsInvalidArgument());
}

TEST(WireHeader, RejectsUnknownType) {
  FrameHeader header;
  header.type = FrameType::kQuery;
  char bytes[kFrameHeaderBytes];
  EncodeFrameHeader(header, bytes);
  bytes[5] = 0;  // below kHello
  EXPECT_FALSE(DecodeFrameHeader(bytes, kDefaultMaxFrameBytes).ok());
  bytes[5] = 42;  // above kGoodbye
  EXPECT_FALSE(DecodeFrameHeader(bytes, kDefaultMaxFrameBytes).ok());
}

TEST(WireHeader, ChecksumDetectsAnySingleBitFlip) {
  const std::string payload = "select * where { ?x p ?y . }";
  std::string frame;
  AppendFrame(FrameType::kQuery, payload, &frame);
  auto header = DecodeFrameHeader(frame.data(), kDefaultMaxFrameBytes);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->checksum,
            FrameChecksum(FrameType::kQuery, payload.data(),
                          payload.size()));
  EXPECT_TRUE(VerifyFramePayload(*header, payload).ok());
  // Every single-bit corruption of the payload must be caught — this is
  // what keeps a flipped bit in a QUERY from running as a different,
  // still-valid query.
  for (size_t byte = 0; byte < payload.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = payload;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      const Status status = VerifyFramePayload(*header, corrupt);
      ASSERT_FALSE(status.ok()) << "byte " << byte << " bit " << bit;
      EXPECT_TRUE(status.IsFrameCorrupt());
    }
  }
}

TEST(WireHeader, ChecksumDetectsAnyHeaderBitFlip) {
  // The checksum covers the six non-checksum header bytes too, so a
  // flipped type/length/version bit can never turn one valid frame into
  // a different valid one (HELLO must not arrive as AGGREGATE). Every
  // header corruption must fail typed: either the decode rejects it
  // outright (bad version / unknown type / oversize — readers wrap that
  // as kFrameCorrupt) or the checksum verify does.
  const std::string payload = "select * where { ?x p ?y . }";
  std::string frame;
  AppendFrame(FrameType::kHello, payload, &frame);
  for (size_t byte = 0; byte < 6; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = frame;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      auto header = DecodeFrameHeader(corrupt.data(),
                                      kDefaultMaxFrameBytes);
      if (!header.ok()) continue;  // rejected before the payload: fine
      const Status status = VerifyFramePayload(*header, payload);
      ASSERT_FALSE(status.ok()) << "byte " << byte << " bit " << bit;
      EXPECT_TRUE(status.IsFrameCorrupt());
    }
  }
}

TEST(WireHeader, EmptyPayloadStillChecksumsTheHeader) {
  // Even a payload-less frame carries a nonzero checksum: the six
  // header prefix bytes are covered, so a flipped PING type byte is
  // caught too.
  std::string frame;
  AppendFrame(FrameType::kPing, std::string(), &frame);
  auto header = DecodeFrameHeader(frame.data(), kDefaultMaxFrameBytes);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->checksum,
            FrameChecksum(FrameType::kPing, nullptr, 0));
  EXPECT_NE(header->checksum, 0u);
  EXPECT_TRUE(VerifyFramePayload(*header, std::string()).ok());
}

TEST(WireHeader, RejectsOversizedPayloadBeforeReadingIt) {
  FrameHeader header;
  header.payload_length = 0xffffffff;  // hostile length prefix
  header.type = FrameType::kQuery;
  char bytes[kFrameHeaderBytes];
  EncodeFrameHeader(header, bytes);
  auto decoded = DecodeFrameHeader(bytes, kDefaultMaxFrameBytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsInvalidArgument());
  // The limit is named so clients can tell oversize from corruption.
  EXPECT_NE(decoded.status().message().find(
                std::to_string(kDefaultMaxFrameBytes)),
            std::string::npos)
      << decoded.status().ToString();
  // Exactly at the cap is fine.
  header.payload_length = kDefaultMaxFrameBytes;
  EncodeFrameHeader(header, bytes);
  EXPECT_TRUE(DecodeFrameHeader(bytes, kDefaultMaxFrameBytes).ok());
}

TEST(WireFrames, HelloRoundTrip) {
  auto decoded = DecodeHello(EncodeHello({"latency"}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->service_class, "latency");
  EXPECT_TRUE(DecodeHello(EncodeHello({""}))->service_class.empty());
}

TEST(WireFrames, HelloAckRoundTrip) {
  HelloAckFrame ack;
  ack.max_frame_bytes = 777;
  ack.rows_per_batch = 256;
  ack.resolved_service_class = "default";
  auto decoded = DecodeHelloAck(EncodeHelloAck(ack));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->max_frame_bytes, 777u);
  EXPECT_EQ(decoded->rows_per_batch, 256u);
  EXPECT_EQ(decoded->resolved_service_class, "default");
}

TEST(WireFrames, QueryRoundTrip) {
  QueryFrame query;
  query.sparql = "select * where { ?x p ?y . }";
  query.timeout_seconds = 2.5;
  query.row_budget = 1000;
  auto decoded = DecodeQuery(EncodeQuery(query));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->sparql, query.sparql);
  EXPECT_EQ(decoded->timeout_seconds, 2.5);
  EXPECT_EQ(decoded->row_budget, 1000);
  // The inherit sentinels survive the trip too.
  QueryFrame inherit;
  inherit.sparql = "q";
  auto sentinel = DecodeQuery(EncodeQuery(inherit));
  ASSERT_TRUE(sentinel.ok());
  EXPECT_LT(sentinel->timeout_seconds, 0.0);
  EXPECT_LT(sentinel->row_budget, 0);
}

TEST(WireFrames, RowBatchRoundTrip) {
  RowBatchFrame batch;
  batch.width = 3;
  batch.data = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto decoded = DecodeRowBatch(EncodeRowBatch(batch));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->width, 3u);
  EXPECT_EQ(decoded->rows(), 3u);
  EXPECT_EQ(decoded->data, batch.data);
}

TEST(WireFrames, RowBatchRejectsSizeMismatch) {
  RowBatchFrame batch;
  batch.width = 3;
  batch.data = {1, 2, 3, 4, 5, 6};
  std::string payload = EncodeRowBatch(batch);
  payload.resize(payload.size() - 1);  // truncate one byte
  EXPECT_FALSE(DecodeRowBatch(payload).ok());
  EXPECT_FALSE(DecodeRowBatch(std::string()).ok());
}

TEST(WireFrames, AggregateRoundTrip) {
  AggregateResult result;
  result.kind = AggregateKind::kCount;
  result.value = {123456789, 42, false};
  result.factorized = true;
  result.groups = {{7, AggregateValue::FromU64(10)},
                   {9, AggregateValue::FromU64(32)}};
  auto decoded = DecodeAggregate(EncodeAggregate(result));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, AggregateKind::kCount);
  EXPECT_EQ(decoded->value, result.value);
  EXPECT_TRUE(decoded->factorized);
  EXPECT_EQ(decoded->groups, result.groups);

  AggregateResult ask;
  ask.kind = AggregateKind::kAsk;
  ask.ask = true;
  ask.fallback_reason = "cyclic shape";
  auto ask_decoded = DecodeAggregate(EncodeAggregate(ask));
  ASSERT_TRUE(ask_decoded.ok());
  EXPECT_TRUE(ask_decoded->ask);
  EXPECT_EQ(ask_decoded->fallback_reason, "cyclic shape");
}

TEST(WireFrames, AggregateRejectsHostileGroupCount) {
  // A group count far past the payload size must fail the preflight,
  // not drive a giant reserve().
  AggregateResult result;
  result.kind = AggregateKind::kCount;
  std::string payload = EncodeAggregate(result);
  payload[payload.size() - 4] = '\xff';
  payload[payload.size() - 3] = '\xff';
  payload[payload.size() - 2] = '\xff';
  payload[payload.size() - 1] = '\x7f';
  EXPECT_FALSE(DecodeAggregate(payload).ok());
}

TEST(WireFrames, ReportRoundTrip) {
  runtime::QueryReport report;
  report.index = 4;
  report.service_class = "batch";
  report.admitted = true;
  report.outcome = runtime::QueryOutcome::kTimedOut;
  report.status = Status::TimedOut("budget spent");
  report.cache_hit = true;
  report.rows = 4242;
  report.queue_seconds = 0.25;
  report.run_seconds = 1.5;
  report.retry_after_ms = 250;
  report.stats.output_tuples = 4242;
  report.stats.ag_pairs = 99;
  report.stats.phase1_seconds = 0.5;
  auto decoded = DecodeReport(EncodeReport(report));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->index, 4u);
  EXPECT_EQ(decoded->service_class, "batch");
  EXPECT_TRUE(decoded->admitted);
  EXPECT_EQ(decoded->outcome, runtime::QueryOutcome::kTimedOut);
  EXPECT_TRUE(decoded->status.IsTimedOut());
  EXPECT_EQ(decoded->status.message(), "budget spent");
  EXPECT_TRUE(decoded->cache_hit);
  EXPECT_EQ(decoded->rows, 4242u);
  EXPECT_EQ(decoded->queue_seconds, 0.25);
  EXPECT_EQ(decoded->run_seconds, 1.5);
  EXPECT_EQ(decoded->retry_after_ms, 250u);
  EXPECT_EQ(decoded->stats.output_tuples, 4242u);
  EXPECT_EQ(decoded->stats.ag_pairs, 99u);
  EXPECT_EQ(decoded->stats.phase1_seconds, 0.5);
}

TEST(WireFrames, ErrorRoundTrip) {
  ErrorFrame error;
  error.code = StatusCode::kResourceExhausted;
  error.message = "runtime saturated";
  auto decoded = DecodeError(EncodeError(error));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, StatusCode::kResourceExhausted);
  EXPECT_TRUE(decoded->ToStatus().IsResourceExhausted());
  EXPECT_EQ(decoded->ToStatus().message(), "runtime saturated");
}

TEST(WireFrames, StatusRoundTrip) {
  StatusFrame status;
  status.running = 3;
  status.queued = 17;
  status.max_inflight = 4;
  status.max_queued = 32;
  status.overloaded = 1;
  status.retry_after_ms = 250;
  TenantLoadFrame latency;
  latency.name = "latency";
  latency.weight = 8;
  latency.running = 2;
  latency.queued = 5;
  latency.completed = 1000;
  latency.shed = 7;
  latency.brownout_rejected = 3;
  status.tenants.push_back(latency);
  status.tenants.push_back(TenantLoadFrame{});
  auto decoded = DecodeStatus(EncodeStatus(status));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->running, 3u);
  EXPECT_EQ(decoded->queued, 17u);
  EXPECT_EQ(decoded->max_inflight, 4u);
  EXPECT_EQ(decoded->max_queued, 32u);
  EXPECT_EQ(decoded->overloaded, 1u);
  EXPECT_EQ(decoded->retry_after_ms, 250u);
  ASSERT_EQ(decoded->tenants.size(), 2u);
  EXPECT_EQ(decoded->tenants[0].name, "latency");
  EXPECT_EQ(decoded->tenants[0].weight, 8u);
  EXPECT_EQ(decoded->tenants[0].running, 2u);
  EXPECT_EQ(decoded->tenants[0].queued, 5u);
  EXPECT_EQ(decoded->tenants[0].completed, 1000u);
  EXPECT_EQ(decoded->tenants[0].shed, 7u);
  EXPECT_EQ(decoded->tenants[0].brownout_rejected, 3u);
  EXPECT_TRUE(decoded->tenants[1].name.empty());
}

TEST(WireFrames, StatusRejectsHostileTenantCount) {
  StatusFrame status;
  std::string payload = EncodeStatus(status);
  // The tenant count is the last u32 before the (empty) tenant list.
  payload[payload.size() - 4] = '\xff';
  payload[payload.size() - 3] = '\xff';
  payload[payload.size() - 2] = '\xff';
  payload[payload.size() - 1] = '\x7f';
  EXPECT_FALSE(DecodeStatus(payload).ok());
}

TEST(WireFrames, ErrorCarriesTransportStatusCodes) {
  // The new transport-layer codes must survive the wire: a client that
  // branches on kOverloaded / kFrameCorrupt needs the typed code back,
  // not a collapsed kInternal.
  for (StatusCode code :
       {StatusCode::kConnectionRefused, StatusCode::kConnectionReset,
        StatusCode::kFrameCorrupt, StatusCode::kOverloaded,
        StatusCode::kRetryExhausted, StatusCode::kStreamBroken}) {
    ErrorFrame error;
    error.code = code;
    error.message = "typed";
    auto decoded = DecodeError(EncodeError(error));
    ASSERT_TRUE(decoded.ok()) << StatusCodeName(code);
    EXPECT_EQ(decoded->code, code);
  }
}

TEST(WireFrames, TrailingGarbageIsMalformedEverywhere) {
  EXPECT_FALSE(DecodeHello(EncodeHello({"x"}) + "junk").ok());
  EXPECT_FALSE(DecodeHelloAck(EncodeHelloAck({}) + "j").ok());
  QueryFrame query;
  query.sparql = "q";
  EXPECT_FALSE(DecodeQuery(EncodeQuery(query) + "j").ok());
  AggregateResult aggregate;
  EXPECT_FALSE(DecodeAggregate(EncodeAggregate(aggregate) + "j").ok());
  runtime::QueryReport report;
  EXPECT_FALSE(DecodeReport(EncodeReport(report) + "j").ok());
  EXPECT_FALSE(DecodeError(EncodeError({}) + "j").ok());
  EXPECT_FALSE(DecodeStatus(EncodeStatus({}) + "j").ok());
}

TEST(WireFrames, TruncationIsMalformedEverywhere) {
  QueryFrame query;
  query.sparql = "select * where { ?x p ?y . }";
  const std::string full = EncodeQuery(query);
  for (size_t n = 0; n < full.size(); ++n) {
    EXPECT_FALSE(DecodeQuery(full.substr(0, n)).ok()) << "len " << n;
  }
  runtime::QueryReport report;
  report.status = Status::ParseError("x");
  const std::string report_bytes = EncodeReport(report);
  for (size_t n = 0; n < report_bytes.size(); ++n) {
    EXPECT_FALSE(DecodeReport(report_bytes.substr(0, n)).ok())
        << "len " << n;
  }
}

TEST(WireFrames, AppendFrameProducesHeaderPlusPayload) {
  std::string out;
  AppendFrame(FrameType::kQuery, "abc", &out);
  ASSERT_EQ(out.size(), kFrameHeaderBytes + 3);
  auto header = DecodeFrameHeader(out.data(), kDefaultMaxFrameBytes);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->type, FrameType::kQuery);
  EXPECT_EQ(header->payload_length, 3u);
  EXPECT_EQ(out.substr(kFrameHeaderBytes), "abc");
}

}  // namespace
}  // namespace net
}  // namespace wireframe
