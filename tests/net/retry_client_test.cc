// RetryingClient semantics: reconnect with decorrelated backoff,
// deadline-aware retry budgets, the replay-safety rule (transparent
// retry ONLY before the first delivered batch), typed kRetryExhausted /
// kStreamBroken, overload retries that honor the server's retry-after
// hint — plus the brownout regression: past the queue watermark the
// lowest-weight tenant is shed typed while the highest-weight tenant's
// work still completes. SMOKE: runs under the TSan job too.

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "datagen/synthetic.h"
#include "datagen/yago_like.h"
#include "net/client.h"
#include "net/fault_injection.h"
#include "net/retry_client.h"
#include "net/server.h"
#include "runtime/server.h"

namespace wireframe {
namespace net {
namespace {

std::vector<std::vector<NodeId>> Sorted(
    std::vector<std::vector<NodeId>> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

RetryPolicy FastPolicy() {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 10;
  policy.retry_budget_seconds = 10.0;
  policy.seed = 7;
  return policy;
}

class RetryClientTest : public ::testing::Test {
 protected:
  RetryClientTest()
      : db_(MakeYagoLike({.scale = 0.01, .seed = 42})),
        catalog_(Catalog::Build(db_.store())) {
    server_ = std::make_unique<runtime::Server>(db_, catalog_);
    net_ = std::make_unique<SocketServer>(server_.get());
    Status started = net_->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    query_ = Table1Queries()[7];
    auto clean = Client::Connect(Address());
    EXPECT_TRUE(clean.ok()) << clean.status().ToString();
    auto baseline = (*clean)->Run(query_);
    EXPECT_TRUE(baseline.ok()) << baseline.status().ToString();
    baseline_rows_ = Sorted(baseline->rows);
    EXPECT_TRUE((*clean)->Goodbye().ok());
  }

  std::string Address() const { return net_->address().ToString(); }

  Database db_;
  Catalog catalog_;
  std::unique_ptr<runtime::Server> server_;
  std::unique_ptr<SocketServer> net_;
  std::string query_;
  std::vector<std::vector<NodeId>> baseline_rows_;
};

TEST_F(RetryClientTest, FaultFreeRunsMatchThePlainClient) {
  RetryingClient retry(Address(), {}, FastPolicy());
  auto result = retry.Run(query_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Sorted(result->rows), baseline_rows_);
  EXPECT_EQ(retry.stats().connects, 1u);
  EXPECT_EQ(retry.stats().transport_retries, 0u);
  EXPECT_EQ(retry.stats().rejection_retries, 0u);
  EXPECT_EQ(retry.stats().backoff_ms_total, 0u);
  EXPECT_TRUE(retry.Ping().ok());
  auto status = retry.QueryStatus();
  ASSERT_TRUE(status.ok()) << status.status().ToString();
  EXPECT_GT(status->max_inflight, 0u);
  EXPECT_EQ(status->overloaded, 0u);
  EXPECT_TRUE(retry.Goodbye().ok());
}

TEST_F(RetryClientTest, ConnectionRefusedExhaustsTyped) {
  // Grab a port nothing listens on: bind, read it back, close.
  std::string dead_address;
  {
    auto probe = SocketAddress::Parse("127.0.0.1:0");
    ASSERT_TRUE(probe.ok());
    auto listener = Socket::Listen(*probe, 1);
    ASSERT_TRUE(listener.ok());
    auto port = listener->BoundPort();
    ASSERT_TRUE(port.ok());
    dead_address = "127.0.0.1:" + std::to_string(*port);
  }
  RetryingClient retry(dead_address, {}, FastPolicy());
  auto result = retry.Run(query_);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsRetryExhausted())
      << result.status().ToString();
  // The exhausted status names the underlying refusal.
  EXPECT_NE(result.status().message().find("refused"), std::string::npos)
      << result.status().ToString();
  EXPECT_EQ(retry.stats().connect_failures, 4u);  // max_attempts
  EXPECT_GT(retry.stats().backoff_ms_total, 0u);
}

TEST_F(RetryClientTest, TransparentRetryAfterPreDeliveryReset) {
  // The first QUERY frame dies in a hard RST before any result was
  // delivered — exactly the replay-safe case. The client must
  // reconnect, rerun, and return rows bit-identical to the baseline,
  // with the retry visible only in the stats.
  FaultSchedule schedule;
  schedule.actions.push_back({FaultOp::kReset, FaultDirection::kWrite,
                              /*at_frame=*/1, /*at_byte=*/0,
                              /*delay_ms=*/0, /*bit_mask=*/1,
                              /*span_bytes=*/0});
  FaultInjector injector(schedule);
  ClientOptions options;
  options.fault_injector = &injector;
  RetryingClient retry(Address(), options, FastPolicy());
  auto result = retry.Run(query_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Sorted(result->rows), baseline_rows_);
  EXPECT_EQ(retry.stats().transport_retries, 1u);
  EXPECT_EQ(retry.stats().connects, 2u);
  EXPECT_TRUE(injector.Drained());
  EXPECT_TRUE(retry.Goodbye().ok());
}

TEST_F(RetryClientTest, SwallowedQueryLivelockIsBoundedAndRetried) {
  // A write-blackhole swallows the ENTIRE first QUERY frame: the server
  // never sees a query and sits in its session loop answering our
  // pings — every PONG proves the peer is alive, none proves the query
  // is progressing, so without a whole-query deadline both sides idle
  // forever (chaos seed 13 found exactly this livelock). The deadline
  // must convert it into a typed kTimedOut, and the retrying client
  // must then replay onto a fresh stream and match the baseline.
  FaultSchedule schedule;
  schedule.actions.push_back({FaultOp::kBlackhole,
                              FaultDirection::kWrite,
                              /*at_frame=*/1, /*at_byte=*/0,
                              /*delay_ms=*/400, /*bit_mask=*/1,
                              /*span_bytes=*/0});
  FaultInjector injector(schedule);
  ClientOptions options;
  options.fault_injector = &injector;
  options.ping_interval_ms = 50;
  options.ping_timeout_ms = 2'000;
  options.query_timeout_ms = 700;
  RetryingClient retry(Address(), options, FastPolicy());
  const auto start = std::chrono::steady_clock::now();
  auto result = retry.Run(query_);
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Sorted(result->rows), baseline_rows_);
  EXPECT_GE(retry.stats().transport_retries, 1u);
  EXPECT_GE(retry.stats().connects, 2u);
  EXPECT_GE(injector.counters().blackholes, 1u);
  // Bounded end to end: deadline + backoff + rerun, nowhere near a
  // hang.
  EXPECT_LT(elapsed.count(), 10'000);
  EXPECT_TRUE(retry.Goodbye().ok());
}

TEST_F(RetryClientTest, PostDeliveryBreakSurfacesAsStreamBroken) {
  // The connection dies AFTER batches reached the caller's hook: a
  // transparent rerun could deliver duplicates, so the typed
  // kStreamBroken must surface instead — and no retry may happen.
  RetryingClient retry(Address(), {}, FastPolicy());
  uint64_t batches = 0;
  auto result = retry.Run(query_, [&](const RowBatchFrame&) {
    if (batches++ == 0) retry.client()->socket().Reset();
  });
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsStreamBroken())
      << result.status().ToString();
  EXPECT_EQ(retry.stats().transport_retries, 0u);
  EXPECT_GE(batches, 1u);
}

TEST_F(RetryClientTest, RetryBudgetDeadlineBeatsAttemptCount) {
  RetryPolicy policy = FastPolicy();
  policy.max_attempts = 1'000'000;
  policy.base_backoff_ms = 20;
  policy.max_backoff_ms = 50;
  policy.retry_budget_seconds = 0.2;
  std::string dead_address;
  {
    auto probe = SocketAddress::Parse("127.0.0.1:0");
    ASSERT_TRUE(probe.ok());
    auto listener = Socket::Listen(*probe, 1);
    ASSERT_TRUE(listener.ok());
    auto port = listener->BoundPort();
    ASSERT_TRUE(port.ok());
    dead_address = "127.0.0.1:" + std::to_string(*port);
  }
  RetryingClient retry(dead_address, {}, policy);
  const auto start = std::chrono::steady_clock::now();
  auto result = retry.Run(query_);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsRetryExhausted())
      << result.status().ToString();
  // The deadline, not the (absurd) attempt count, ended the loop —
  // generously bounded for slow CI machines.
  EXPECT_LT(elapsed.count(), 5'000);
  EXPECT_LT(retry.stats().connect_failures, 1'000u);
}

/// Brownout fixture: single-slot runtime with a queue watermark of 1
/// over a gold (weight 8) / bronze (weight 1) tenant pair, behind the
/// socket front-end, with a slow blowup query to jam the slot.
class BrownoutNetTest : public ::testing::Test {
 protected:
  static constexpr uint32_t kRetryAfterMs = 77;

  BrownoutNetTest()
      : db_(MakeChainBlowupGraph(300, 300, /*noise=*/10)),
        catalog_(Catalog::Build(db_.store())) {
    runtime::ServerOptions options;
    options.runtime.admission.max_inflight = 1;
    options.runtime.admission.max_queued = 8;
    options.runtime.admission.brownout_queue_watermark = 1;
    options.runtime.admission.brownout_retry_after_ms = kRetryAfterMs;
    runtime::TenantSpec gold;
    gold.name = "gold";
    gold.weight = 8;
    runtime::TenantSpec bronze;
    bronze.name = "bronze";
    bronze.weight = 1;
    options.runtime.admission.tenants = {gold, bronze};
    options.default_service_class = "gold";
    server_ = std::make_unique<runtime::Server>(db_, catalog_, options);
    SocketServerOptions net_options;
    net_options.send_buffer_bytes = 32u << 10;
    net_options.kernel_send_buffer_bytes = 16 << 10;
    net_options.rows_per_batch = 128;
    net_ = std::make_unique<SocketServer>(server_.get(), net_options);
    Status started = net_->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  std::unique_ptr<Client> Connect(const std::string& tenant) {
    ClientOptions options;
    options.service_class = tenant;
    options.recv_buffer_bytes = 8 << 10;
    auto client = Client::Connect(net_->address().ToString(), options);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  const std::string kBlowup =
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }";

  Database db_;
  Catalog catalog_;
  std::unique_ptr<runtime::Server> server_;
  std::unique_ptr<SocketServer> net_;
};

TEST_F(BrownoutNetTest, LowestWeightShedsTypedWhileGoldCompletes) {
  // Gold connection A jams the single slot (slow reader). From inside
  // its first batch — the slot is guaranteed busy — gold connection B
  // queues a query (depth hits the watermark) and bronze then submits
  // into the brownout band: bronze must shed typed kOverloaded with the
  // configured retry-after hint; gold B must stay queued and complete.
  std::unique_ptr<Client> jam = Connect("gold");
  Status probe_status = Status::OK();
  runtime::QueryReport bronze_report;
  bool bronze_overloaded_status_seen = false;
  uint32_t status_retry_after = 0;
  std::thread queued_gold;
  Result<QueryResult> gold_result = Status::Internal("never ran");
  bool probed = false;
  auto jam_result = jam->Run(kBlowup, [&](const RowBatchFrame&) {
    if (probed) return;
    probed = true;
    // Gold B occupies the queue up to the watermark.
    queued_gold = std::thread([&] {
      std::unique_ptr<Client> gold = Connect("gold");
      gold_result = gold->Run(kBlowup);
      (void)gold->Goodbye();
    });
    // Wait until the runtime reports one queued query.
    for (int i = 0; i < 1000; ++i) {
      const runtime::RuntimeStats stats = server_->runtime().stats();
      uint32_t queued = 0;
      for (const auto& tenant : stats.tenants) queued += tenant.queued;
      if (queued >= 1) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    // Bronze submits into the brownout band.
    std::unique_ptr<Client> bronze = Connect("bronze");
    auto rejected = bronze->Run(kBlowup);
    if (!rejected.ok()) {
      probe_status = rejected.status();
      return;
    }
    bronze_report = rejected->report;
    // The STATUS snapshot also flags the overload, typed for pollers.
    auto status = bronze->QueryStatus();
    if (status.ok()) {
      bronze_overloaded_status_seen = status->overloaded != 0;
      status_retry_after = status->retry_after_ms;
    }
    probe_status = bronze->Goodbye();
  });
  ASSERT_TRUE(jam_result.ok()) << jam_result.status().ToString();
  queued_gold.join();
  ASSERT_TRUE(probe_status.ok()) << probe_status.ToString();
  // Bronze: typed kOverloaded rejection carrying the retry-after hint.
  EXPECT_FALSE(bronze_report.admitted);
  EXPECT_TRUE(bronze_report.status.IsOverloaded())
      << bronze_report.status.ToString();
  EXPECT_EQ(bronze_report.retry_after_ms, kRetryAfterMs);
  EXPECT_TRUE(bronze_overloaded_status_seen);
  EXPECT_EQ(status_retry_after, kRetryAfterMs);
  // Gold: the jamming query AND the queued query both completed — the
  // highest-weight tenant was never shed.
  EXPECT_EQ(jam_result->report.outcome, runtime::QueryOutcome::kCompleted);
  ASSERT_TRUE(gold_result.ok()) << gold_result.status().ToString();
  EXPECT_EQ(gold_result->report.outcome,
            runtime::QueryOutcome::kCompleted);
  // And the brownout shows up in the runtime's tenant stats.
  uint64_t browned = 0;
  for (const auto& tenant : server_->runtime().stats().tenants) {
    browned += tenant.brownout_rejected;
  }
  EXPECT_GE(browned, 1u);
  EXPECT_TRUE(jam->Goodbye().ok());
}

TEST_F(BrownoutNetTest, RetryingClientHonorsRetryAfterThenExhausts) {
  // Bronze behind a RetryingClient while the slot stays jammed: every
  // attempt sheds, each backoff is floored at the server's retry-after
  // hint, and the final status is a typed kRetryExhausted naming the
  // overload.
  std::unique_ptr<Client> jam = Connect("gold");
  Status probe_status = Status::OK();
  uint64_t rejection_retries = 0;
  uint64_t backoff_ms = 0;
  Status bronze_status = Status::OK();
  std::thread filler_thread;  // joined AFTER the jam drains (it is
                              // queued behind the jam's single slot)
  bool probed = false;
  auto jam_result = jam->Run(kBlowup, [&](const RowBatchFrame&) {
    if (probed) return;
    probed = true;
    // One gold query in the queue puts the depth at the watermark.
    filler_thread = std::thread([this] {
      std::unique_ptr<Client> gold = Connect("gold");
      QueryFrame filler;
      filler.sparql = kBlowup;
      filler.row_budget = 1;
      (void)gold->Run(filler);
      (void)gold->Goodbye();
    });
    for (int i = 0; i < 1000; ++i) {
      const runtime::RuntimeStats stats = server_->runtime().stats();
      uint32_t queued = 0;
      for (const auto& tenant : stats.tenants) queued += tenant.queued;
      if (queued >= 1) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ClientOptions options;
    options.service_class = "bronze";
    RetryPolicy policy;
    policy.max_attempts = 3;
    policy.base_backoff_ms = 1;
    policy.max_backoff_ms = 5;
    policy.retry_budget_seconds = 10.0;
    RetryingClient bronze(net_->address().ToString(), options, policy);
    auto result = bronze.Run(kBlowup);
    bronze_status = result.ok() ? Status::OK() : result.status();
    rejection_retries = bronze.stats().rejection_retries;
    backoff_ms = bronze.stats().backoff_ms_total;
    probe_status = bronze.Goodbye();
  });
  ASSERT_TRUE(jam_result.ok()) << jam_result.status().ToString();
  filler_thread.join();
  ASSERT_TRUE(probe_status.ok()) << probe_status.ToString();
  ASSERT_FALSE(bronze_status.ok());
  EXPECT_TRUE(bronze_status.IsRetryExhausted())
      << bronze_status.ToString();
  EXPECT_NE(bronze_status.message().find("overloaded"), std::string::npos)
      << bronze_status.ToString();
  EXPECT_EQ(rejection_retries, 2u);  // attempts 2 and 3 were retries
  // Each retry slept at least the server's hint.
  EXPECT_GE(backoff_ms, 2u * kRetryAfterMs);
  EXPECT_TRUE(jam->Goodbye().ok());
}

/// Liveness: server-side idle reaping vs client pings.
class LivenessTest : public ::testing::Test {
 protected:
  LivenessTest()
      : db_(MakeYagoLike({.scale = 0.01, .seed = 42})),
        catalog_(Catalog::Build(db_.store())) {
    server_ = std::make_unique<runtime::Server>(db_, catalog_);
    SocketServerOptions options;
    options.idle_timeout_ms = 400;  // tight, so the test is quick
    net_ = std::make_unique<SocketServer>(server_.get(), options);
    Status started = net_->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  Database db_;
  Catalog catalog_;
  std::unique_ptr<runtime::Server> server_;
  std::unique_ptr<SocketServer> net_;
};

TEST_F(LivenessTest, SilentIdleConnectionIsReaped) {
  ClientOptions options;
  options.ping_interval_ms = 0;  // a client that never pings
  auto client = Client::Connect(net_->address().ToString(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  std::this_thread::sleep_for(std::chrono::milliseconds(900));
  // The server reaped the idle session (typed TimedOut ERROR, then
  // close); whichever the client observes first, the query must fail.
  auto result = (*client)->Run(Table1Queries()[7]);
  EXPECT_FALSE(result.ok());
}

TEST_F(LivenessTest, PingingClientSurvivesIdleReaping) {
  ClientOptions options;
  options.ping_interval_ms = 100;
  auto client = Client::Connect(net_->address().ToString(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  // Explicit probes stand in for "waiting inside Run": each PING resets
  // the server's idle clock, so 3x the idle timeout passes harmlessly.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE((*client)->Ping().ok()) << "ping " << i;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  auto result = (*client)->Run(Table1Queries()[7]);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->report.outcome, runtime::QueryOutcome::kCompleted);
  EXPECT_TRUE((*client)->Goodbye().ok());
}

}  // namespace
}  // namespace net
}  // namespace wireframe
