// End-to-end contract of net::SocketServer over loopback: streamed
// results must be bit-identical to in-process RunBatch, fault paths
// (malformed frame, oversized frame, client killed mid-stream) must be
// contained to the one connection, per-query overrides must flow
// through the QUERY frame, and rejected submissions must carry the
// resolved service class and typed status exactly like RunBatch does.
// SMOKE: the TSan job runs these — the acceptor/reader/writer/driver
// hand-offs are exactly where cross-thread races would live.

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "datagen/synthetic.h"
#include "datagen/yago_like.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "runtime/server.h"

namespace wireframe {
namespace net {
namespace {

std::vector<std::vector<NodeId>> Sorted(
    std::vector<std::vector<NodeId>> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Raw-socket HELLO/HELLO-ACK for the fault-path tests (the typed
/// Client refuses to send broken frames).
Result<Socket> RawHandshake(const SocketAddress& address) {
  WF_ASSIGN_OR_RETURN(Socket sock, Socket::Connect(address, 5000));
  std::string hello;
  AppendFrame(FrameType::kHello, EncodeHello({""}), &hello);
  WF_RETURN_NOT_OK(sock.WriteAll(hello.data(), hello.size(), 5000));
  char header[kFrameHeaderBytes];
  WF_RETURN_NOT_OK(sock.ReadExact(header, kFrameHeaderBytes, 5000));
  WF_ASSIGN_OR_RETURN(FrameHeader decoded,
                      DecodeFrameHeader(header, kDefaultMaxFrameBytes));
  std::string payload(decoded.payload_length, '\0');
  if (!payload.empty()) {
    WF_RETURN_NOT_OK(sock.ReadExact(payload.data(), payload.size(), 5000));
  }
  if (decoded.type != FrameType::kHelloAck) {
    return Status::Internal("expected HELLO-ACK");
  }
  return sock;
}

/// Reads one whole frame off a raw socket.
Result<Frame> ReadRawFrame(Socket& sock, int timeout_ms = 5000) {
  char header[kFrameHeaderBytes];
  WF_RETURN_NOT_OK(sock.ReadExact(header, kFrameHeaderBytes, timeout_ms));
  WF_ASSIGN_OR_RETURN(FrameHeader decoded,
                      DecodeFrameHeader(header, kDefaultMaxFrameBytes));
  Frame frame;
  frame.type = decoded.type;
  frame.payload.resize(decoded.payload_length);
  if (!frame.payload.empty()) {
    WF_RETURN_NOT_OK(sock.ReadExact(frame.payload.data(),
                                    frame.payload.size(), timeout_ms));
  }
  return frame;
}

/// Small YAGO-like store behind both a runtime::Server and its socket
/// front-end, listening on a kernel-assigned loopback port.
class SocketServerTest : public ::testing::Test {
 protected:
  SocketServerTest()
      : db_(MakeYagoLike({.scale = 0.01, .seed = 42})),
        catalog_(Catalog::Build(db_.store())) {
    runtime::ServerOptions options;
    options.runtime.admission.ag_cache_bytes = 16u << 20;
    server_ = std::make_unique<runtime::Server>(db_, catalog_, options);
    net_ = std::make_unique<SocketServer>(server_.get());
    Status started = net_->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  std::string Address() const { return net_->address().ToString(); }

  Database db_;
  Catalog catalog_;
  std::unique_ptr<runtime::Server> server_;
  std::unique_ptr<SocketServer> net_;
};

TEST_F(SocketServerTest, StreamedRowsMatchRunBatchBitExactly) {
  std::vector<std::string> queries = Table1Queries();
  queries.push_back(
      "select (count(*) as ?n) where { ?x livesIn ?c . "
      "?c isLocatedIn ?k . }");
  std::vector<CollectingSink> sinks(queries.size());
  std::vector<Sink*> sink_ptrs;
  for (auto& sink : sinks) sink_ptrs.push_back(&sink);
  const std::vector<runtime::QueryReport> expect =
      server_->RunBatch(queries, &sink_ptrs);

  auto client = Client::Connect(Address());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto streamed = (*client)->Run(queries[i]);
    ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
    EXPECT_EQ(streamed->report.outcome, expect[i].outcome) << "query " << i;
    EXPECT_EQ(Sorted(streamed->rows), Sorted(sinks[i].rows()))
        << "query " << i;
    if (expect[i].has_aggregate) {
      ASSERT_TRUE(streamed->report.has_aggregate);
      EXPECT_EQ(streamed->report.aggregate.value,
                expect[i].aggregate.value);
      EXPECT_EQ(streamed->report.aggregate.factorized,
                expect[i].aggregate.factorized);
    }
  }
  // Verbatim repeat: the answer-graph cache serves it, visibly so.
  auto repeat = (*client)->Run(queries[5]);
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat->report.cache_hit);
  EXPECT_EQ(Sorted(repeat->rows), Sorted(sinks[5].rows()));
  EXPECT_TRUE((*client)->Goodbye().ok());
}

TEST_F(SocketServerTest, UnknownServiceClassResolvesToDefault) {
  ClientOptions options;
  options.service_class = "no-such-tenant";
  auto client = Client::Connect(Address(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ((*client)->hello().resolved_service_class, "default");
  EXPECT_GT((*client)->hello().rows_per_batch, 0u);
  EXPECT_TRUE((*client)->Goodbye().ok());
}

TEST_F(SocketServerTest, ParseErrorTravelsInReportNotError) {
  auto client = Client::Connect(Address());
  ASSERT_TRUE(client.ok());
  auto result = (*client)->Run("select * where { broken");
  // Query-level failure: the connection survives and the REPORT carries
  // the typed status plus the resolved class (the PR 6 admission-report
  // contract, through the socket).
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->report.admitted);
  EXPECT_TRUE(result->report.status.IsParseError())
      << result->report.status.ToString();
  EXPECT_EQ(result->report.service_class, "default");
  EXPECT_EQ(result->report.outcome, runtime::QueryOutcome::kFailed);
  // Same connection keeps working.
  auto ok = (*client)->Run(Table1Queries()[7]);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->report.outcome, runtime::QueryOutcome::kCompleted);
  EXPECT_TRUE((*client)->Goodbye().ok());
}

TEST_F(SocketServerTest, MalformedFrameDrawsTypedErrorThenCloses) {
  auto sock = RawHandshake(net_->address());
  ASSERT_TRUE(sock.ok()) << sock.status().ToString();
  char bad[kFrameHeaderBytes] = {0};
  bad[4] = 99;  // wire version
  bad[5] = static_cast<char>(FrameType::kQuery);
  ASSERT_TRUE(sock->WriteAll(bad, sizeof bad, 5000).ok());
  auto reply = ReadRawFrame(*sock);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, FrameType::kError);
  auto error = DecodeError(reply->payload);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->code, StatusCode::kFrameCorrupt);
  // The byte stream is untrusted now: the server closes after the ERROR.
  char byte;
  EXPECT_FALSE(sock->ReadExact(&byte, 1, 5000).ok());
  // And the counter saw it.
  EXPECT_GE(net_->stats().net_malformed_frames, 1u);
}

TEST_F(SocketServerTest, OversizedFrameDrawsTypedError) {
  auto sock = RawHandshake(net_->address());
  ASSERT_TRUE(sock.ok());
  FrameHeader huge;
  huge.payload_length = 0xfffffff0;
  huge.type = FrameType::kQuery;
  char bytes[kFrameHeaderBytes];
  EncodeFrameHeader(huge, bytes);
  ASSERT_TRUE(sock->WriteAll(bytes, sizeof bytes, 5000).ok());
  auto reply = ReadRawFrame(*sock);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, FrameType::kError);
  EXPECT_EQ(DecodeError(reply->payload)->code,
            StatusCode::kFrameCorrupt);
}

TEST_F(SocketServerTest, QueryBeforeHelloIsAProtocolError) {
  auto connected = Socket::Connect(net_->address(), 5000);
  ASSERT_TRUE(connected.ok());
  Socket sock = std::move(connected).value();
  QueryFrame query;
  query.sparql = "select * where { ?x p ?y . }";
  std::string wire;
  AppendFrame(FrameType::kQuery, EncodeQuery(query), &wire);
  ASSERT_TRUE(sock.WriteAll(wire.data(), wire.size(), 5000).ok());
  auto reply = ReadRawFrame(sock);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, FrameType::kError);
}

TEST_F(SocketServerTest, GoodbyeIsTheLastFrameOfADrain) {
  auto sock = RawHandshake(net_->address());
  ASSERT_TRUE(sock.ok());
  net_->Stop();  // drain: the idle session is told to go away
  auto frame = ReadRawFrame(*sock);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, FrameType::kGoodbye);
  char byte;
  EXPECT_FALSE(sock->ReadExact(&byte, 1, 5000).ok());  // then EOF
}

TEST_F(SocketServerTest, ConnectionStatsAreReported) {
  auto client = Client::Connect(Address());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Run(Table1Queries()[8]).ok());
  const runtime::RuntimeStats stats = net_->stats();
  EXPECT_GE(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.connections_active, 1u);
  ASSERT_EQ(stats.connections.size(), 1u);
  const runtime::ConnectionStats& conn = stats.connections[0];
  EXPECT_EQ(conn.service_class, "default");
  EXPECT_EQ(conn.queries, 1u);
  EXPECT_GT(conn.bytes_in, 0u);
  EXPECT_GT(conn.bytes_out, 0u);
  EXPECT_GT(conn.frames_in, 0u);
  EXPECT_GT(conn.frames_out, 0u);
  EXPECT_TRUE((*client)->Goodbye().ok());
}

/// Chain-blowup store (90k embeddings, ~1.4 MB of rows): enough stream
/// volume that kills, cancels, and budgets land mid-flight. The app
/// send buffer AND the kernel-level SO_SNDBUF are deliberately tiny so
/// the stream cannot hide in kernel buffering — without the latter,
/// loopback swallows the whole stream and the query completes before
/// any mid-flight event can land.
class BlowupNetTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kSendBuffer = 32u << 10;

  BlowupNetTest()
      : db_(MakeChainBlowupGraph(300, 300, /*noise=*/10)),
        catalog_(Catalog::Build(db_.store())) {
    runtime::ServerOptions options;
    options.runtime.admission.max_inflight = 1;
    options.runtime.admission.max_queued = 0;  // saturated = reject
    runtime::TenantSpec batch;
    batch.name = "batch";
    options.runtime.admission.tenants = {batch};
    server_ = std::make_unique<runtime::Server>(db_, catalog_, options);
    SocketServerOptions net_options;
    net_options.send_buffer_bytes = kSendBuffer;
    net_options.kernel_send_buffer_bytes = 16 << 10;
    net_options.rows_per_batch = 128;
    net_ = std::make_unique<SocketServer>(server_.get(), net_options);
    Status started = net_->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  std::unique_ptr<Client> SmallBufferClient() {
    ClientOptions options;
    options.recv_buffer_bytes = 8 << 10;
    auto client = Client::Connect(net_->address().ToString(), options);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  const std::string kBlowup =
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }";

  Database db_;
  Catalog catalog_;
  std::unique_ptr<runtime::Server> server_;
  std::unique_ptr<SocketServer> net_;
};

TEST_F(BlowupNetTest, CancelFrameStopsTheStream) {
  std::unique_ptr<Client> client = SmallBufferClient();
  bool cancelled = false;
  auto result = client->Run(kBlowup, [&](const RowBatchFrame&) {
    if (!cancelled) {
      cancelled = true;
      EXPECT_TRUE(client->SendCancel().ok());
    }
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->report.outcome, runtime::QueryOutcome::kCancelled);
  EXPECT_LT(result->rows.size(), 90000u);  // cut short of the full set
  // The connection survives a cancel; the next query completes.
  QueryFrame small;
  small.sparql = kBlowup;
  small.row_budget = 10;
  auto after = client->Run(small);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->report.outcome,
            runtime::QueryOutcome::kBudgetExhausted);
  EXPECT_TRUE(client->Goodbye().ok());
}

TEST_F(BlowupNetTest, QueryFrameOverridesRowBudget) {
  std::unique_ptr<Client> client = SmallBufferClient();
  QueryFrame query;
  query.sparql = kBlowup;
  query.row_budget = 5;
  auto result = client->Run(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->report.outcome,
            runtime::QueryOutcome::kBudgetExhausted);
  EXPECT_EQ(result->rows.size(), 5u);
  EXPECT_TRUE(client->Goodbye().ok());
}

TEST_F(BlowupNetTest, KilledClientCancelsItsQueryAndServerSurvives) {
  {
    std::unique_ptr<Client> victim = SmallBufferClient();
    bool killed = false;
    auto run = victim->Run(kBlowup, [&](const RowBatchFrame&) {
      if (!killed) {
        killed = true;
        victim->socket().Reset();  // RST mid-stream, like kill -9
      }
    });
    EXPECT_TRUE(killed);
    EXPECT_FALSE(run.ok());
  }
  // The abort must reach the counters (the reader notices on its next
  // pump slice) and a fresh connection must serve normally.
  for (int i = 0; i < 500 && net_->stats().net_aborted_streams == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(net_->stats().net_aborted_streams, 1u);
  std::unique_ptr<Client> after = SmallBufferClient();
  QueryFrame query;
  query.sparql = kBlowup;
  query.row_budget = 100;
  auto result = after->Run(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 100u);
  EXPECT_TRUE(after->Goodbye().ok());
}

TEST_F(BlowupNetTest, RejectedSubmissionCarriesResolvedClassAndStatus) {
  // Connection A jams the single in-flight slot: at its FIRST batch the
  // engine has emitted at most app-queue + SO_SNDBUF + one frame
  // (~50 KB of 1.4 MB), so the query is necessarily still in flight.
  // Connection B ("batch" tenant) then submits into the saturated
  // runtime and must get the RunBatch-shaped rejection: admitted=false,
  // ResourceExhausted, and the RESOLVED class — through the socket, not
  // just in-process (the PR 6 regression, wire edition).
  auto connected = Client::Connect(net_->address().ToString());
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  std::unique_ptr<Client> slow = std::move(connected).value();
  bool probed = false;
  runtime::QueryReport rejected;
  Status probe_status = Status::OK();
  auto result = slow->Run(kBlowup, [&](const RowBatchFrame&) {
    if (probed) return;
    probed = true;
    ClientOptions options;
    options.service_class = "batch";
    auto other = Client::Connect(net_->address().ToString(), options);
    if (!other.ok()) {
      probe_status = other.status();
      return;
    }
    auto run = (*other)->Run(kBlowup);
    if (!run.ok()) {
      probe_status = run.status();
      return;
    }
    rejected = run->report;
    probe_status = (*other)->Goodbye();
  });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(probed);
  ASSERT_TRUE(probe_status.ok()) << probe_status.ToString();
  EXPECT_FALSE(rejected.admitted);
  EXPECT_TRUE(rejected.status.IsResourceExhausted())
      << rejected.status.ToString();
  EXPECT_EQ(rejected.service_class, "batch");
  EXPECT_EQ(rejected.outcome, runtime::QueryOutcome::kFailed);
  // A's own stream was only slowed, never corrupted.
  EXPECT_EQ(result->report.outcome, runtime::QueryOutcome::kCompleted);
  EXPECT_EQ(result->rows.size(), 90000u);
  EXPECT_TRUE(slow->Goodbye().ok());
}

}  // namespace
}  // namespace net
}  // namespace wireframe
