// The deterministic fault plane of net/fault_injection.h, driven
// through real loopback connections: partial writes, headers split
// across reads, flipped bits, blackholes, and mid-frame disconnects.
// The invariant under test is the chaos contract — under ANY injected
// fault a query either completes bit-identical to the fault-free run or
// fails with a typed transport error; never a hang, never a wrong row.
// SMOKE: the TSan job runs these — the injector is shared between a
// connection's reader and writer threads.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "datagen/synthetic.h"
#include "datagen/yago_like.h"
#include "net/client.h"
#include "net/fault_injection.h"
#include "net/server.h"
#include "net/wire.h"
#include "runtime/server.h"

namespace wireframe {
namespace net {
namespace {

std::vector<std::vector<NodeId>> Sorted(
    std::vector<std::vector<NodeId>> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(FaultSchedule, RandomIsDeterministicAndCoversEveryOp) {
  std::string sweep;
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    const FaultSchedule a = FaultSchedule::Random(seed);
    const FaultSchedule b = FaultSchedule::Random(seed);
    ASSERT_FALSE(a.actions.empty()) << "seed " << seed;
    ASSERT_LE(a.actions.size(), 4u);
    EXPECT_EQ(a.ToString(), b.ToString()) << "seed " << seed;
    sweep += a.ToString();
  }
  // Across a modest sweep every op must appear, or the chaos driver
  // would silently stop exercising whole fault classes.
  for (FaultOp op : {FaultOp::kDelay, FaultOp::kBitFlip, FaultOp::kShortIo,
                     FaultOp::kBlackhole, FaultOp::kClose, FaultOp::kReset}) {
    EXPECT_NE(sweep.find(FaultOpName(op)), std::string::npos)
        << FaultOpName(op);
  }
}

/// Small YAGO-like store behind a socket server, with a fault-free
/// baseline run to compare every faulted stream against.
class FaultNetTest : public ::testing::Test {
 protected:
  FaultNetTest()
      : db_(MakeYagoLike({.scale = 0.01, .seed = 42})),
        catalog_(Catalog::Build(db_.store())) {
    server_ = std::make_unique<runtime::Server>(db_, catalog_);
    net_ = std::make_unique<SocketServer>(server_.get());
    Status started = net_->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    query_ = Table1Queries()[7];
    auto clean = Client::Connect(Address());
    EXPECT_TRUE(clean.ok()) << clean.status().ToString();
    auto baseline = (*clean)->Run(query_);
    EXPECT_TRUE(baseline.ok()) << baseline.status().ToString();
    baseline_rows_ = Sorted(baseline->rows);
    EXPECT_FALSE(baseline_rows_.empty());
    EXPECT_TRUE((*clean)->Goodbye().ok());
  }

  std::string Address() const { return net_->address().ToString(); }

  Result<std::unique_ptr<Client>> FaultyClient(FaultInjector* injector) {
    ClientOptions options;
    options.fault_injector = injector;
    options.io_timeout_ms = 10'000;
    return Client::Connect(Address(), options);
  }

  Database db_;
  Catalog catalog_;
  std::unique_ptr<runtime::Server> server_;
  std::unique_ptr<SocketServer> net_;
  std::string query_;
  std::vector<std::vector<NodeId>> baseline_rows_;
};

TEST_F(FaultNetTest, ShortWritesStillDeliverTheFrameIntact) {
  // Client frame 1 (the QUERY) trickles out one byte per send — the
  // partial-write path of WriteAll, including a header split across
  // many sends. The server must reassemble it bit-exactly.
  FaultSchedule schedule;
  schedule.actions.push_back({FaultOp::kShortIo, FaultDirection::kWrite,
                              /*at_frame=*/1, /*at_byte=*/0,
                              /*delay_ms=*/0, /*bit_mask=*/1,
                              /*span_bytes=*/512});
  FaultInjector injector(schedule);
  auto client = FaultyClient(&injector);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto result = (*client)->Run(query_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Sorted(result->rows), baseline_rows_);
  EXPECT_GT(injector.counters().short_io_spans, 0u);
  EXPECT_TRUE((*client)->Goodbye().ok());
}

TEST_F(FaultNetTest, HeadersSplitAcrossReadsStillParse) {
  // Server-to-client direction trickles through the whole handshake and
  // first result frames: every ReadExact sees 1-byte reads, so frame
  // headers arrive in up to eight pieces.
  FaultSchedule schedule;
  schedule.actions.push_back({FaultOp::kShortIo, FaultDirection::kRead,
                              /*at_frame=*/0, /*at_byte=*/0,
                              /*delay_ms=*/0, /*bit_mask=*/1,
                              /*span_bytes=*/256});
  FaultInjector injector(schedule);
  auto client = FaultyClient(&injector);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto result = (*client)->Run(query_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Sorted(result->rows), baseline_rows_);
  EXPECT_TRUE((*client)->Goodbye().ok());
}

TEST_F(FaultNetTest, FlippedQueryBitIsCaughtByTheChecksum) {
  // One bit of the QUERY payload flips on the wire. Without the v2
  // checksum this could decode as a DIFFERENT valid query and return
  // wrong rows; the contract is a typed kFrameCorrupt instead.
  FaultSchedule schedule;
  schedule.actions.push_back({FaultOp::kBitFlip, FaultDirection::kWrite,
                              /*at_frame=*/1,
                              /*at_byte=*/kFrameHeaderBytes + 30,
                              /*delay_ms=*/0, /*bit_mask=*/0x08,
                              /*span_bytes=*/0});
  FaultInjector injector(schedule);
  auto client = FaultyClient(&injector);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto result = (*client)->Run(query_);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsFrameCorrupt())
      << result.status().ToString();
  EXPECT_EQ(injector.counters().bit_flips, 1u);
  EXPECT_TRUE(injector.Drained());
  // The one poisoned connection is gone, the server is fine.
  auto after = Client::Connect(Address());
  ASSERT_TRUE(after.ok());
  auto rerun = (*after)->Run(query_);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_EQ(Sorted(rerun->rows), baseline_rows_);
  EXPECT_TRUE((*after)->Goodbye().ok());
}

TEST_F(FaultNetTest, FlippedResultBitIsCaughtByTheClient) {
  // Server-to-client frame 1 (first post-handshake result frame) takes
  // a payload bit flip; the client's checksum verify must refuse it.
  FaultSchedule schedule;
  schedule.actions.push_back({FaultOp::kBitFlip, FaultDirection::kRead,
                              /*at_frame=*/1,
                              /*at_byte=*/kFrameHeaderBytes + 2,
                              /*delay_ms=*/0, /*bit_mask=*/0x80,
                              /*span_bytes=*/0});
  FaultInjector injector(schedule);
  auto client = FaultyClient(&injector);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto result = (*client)->Run(query_);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsFrameCorrupt())
      << result.status().ToString();
}

TEST_F(FaultNetTest, MidFrameDisconnectIsTypedAndContained) {
  // Hard RST three bytes into the QUERY frame's header: the classic
  // kill-9-mid-frame. The client gets a typed kConnectionReset; the
  // server sees EOF mid-frame and reaps the session without fuss.
  FaultSchedule schedule;
  schedule.actions.push_back({FaultOp::kReset, FaultDirection::kWrite,
                              /*at_frame=*/1, /*at_byte=*/3,
                              /*delay_ms=*/0, /*bit_mask=*/1,
                              /*span_bytes=*/0});
  FaultInjector injector(schedule);
  auto client = FaultyClient(&injector);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto result = (*client)->Run(query_);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsConnectionReset())
      << result.status().ToString();
  EXPECT_EQ(injector.counters().resets, 1u);
  auto after = Client::Connect(Address());
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  auto rerun = (*after)->Run(query_);
  ASSERT_TRUE(rerun.ok());
  EXPECT_EQ(Sorted(rerun->rows), baseline_rows_);
  EXPECT_TRUE((*after)->Goodbye().ok());
}

TEST_F(FaultNetTest, OrderlyCloseMidStreamIsTyped) {
  FaultSchedule schedule;
  schedule.actions.push_back({FaultOp::kClose, FaultDirection::kWrite,
                              /*at_frame=*/1, /*at_byte=*/0,
                              /*delay_ms=*/0, /*bit_mask=*/1,
                              /*span_bytes=*/0});
  FaultInjector injector(schedule);
  auto client = FaultyClient(&injector);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto result = (*client)->Run(query_);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsConnectionReset())
      << result.status().ToString();
  EXPECT_EQ(injector.counters().closes, 1u);
}

TEST_F(FaultNetTest, DelayAndBlackholeOnlySlowTheStream) {
  // A delay plus a short read-side blackhole: bytes are merely late
  // (the kernel buffers them), so the rows must still be bit-identical.
  FaultSchedule schedule;
  schedule.actions.push_back({FaultOp::kDelay, FaultDirection::kWrite,
                              /*at_frame=*/1, /*at_byte=*/4,
                              /*delay_ms=*/30, /*bit_mask=*/1,
                              /*span_bytes=*/0});
  schedule.actions.push_back({FaultOp::kBlackhole, FaultDirection::kRead,
                              /*at_frame=*/1, /*at_byte=*/0,
                              /*delay_ms=*/60, /*bit_mask=*/1,
                              /*span_bytes=*/0});
  FaultInjector injector(schedule);
  auto client = FaultyClient(&injector);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto result = (*client)->Run(query_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Sorted(result->rows), baseline_rows_);
  EXPECT_EQ(injector.counters().delays, 1u);
  EXPECT_EQ(injector.counters().blackholes, 1u);
  EXPECT_TRUE(injector.Drained());
  EXPECT_TRUE((*client)->Goodbye().ok());
}

}  // namespace
}  // namespace net
}  // namespace wireframe
