// Back-pressure contract of the socket front-end: a reader that drains
// one frame per 10 ms against a stream of thousands of rows must (a)
// keep the per-connection send buffer under the configured bound —
// the emitting sink suspends instead of buffering without limit — and
// (b) throttle ONLY its own query: a second connection's queries keep
// completing promptly, because the suspended sink blocks its own
// query's driver thread, never the shared pool. SMOKE: the TSan job
// runs this — the sink-suspend/writer/reader hand-off is the raciest
// path in src/net.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "datagen/synthetic.h"
#include "net/client.h"
#include "net/server.h"
#include "runtime/server.h"
#include "util/timer.h"

namespace wireframe {
namespace net {
namespace {

constexpr uint64_t kSendBuffer = 32u << 10;

TEST(Backpressure, SlowReaderThrottlesOnlyItsOwnQuery) {
  // 22,500 embeddings of width 4 = ~360 KB of rows: an order of
  // magnitude past the 32 KB send buffer and the 8 KB client receive
  // buffer, so the stream MUST suspend many times.
  Database db = MakeChainBlowupGraph(150, 150, /*noise=*/10);
  Catalog catalog = Catalog::Build(db.store());
  runtime::ServerOptions server_options;
  server_options.runtime.admission.max_inflight = 2;
  server_options.timeout_seconds = 120.0;
  runtime::Server server(db, catalog, server_options);
  SocketServerOptions net_options;
  net_options.send_buffer_bytes = kSendBuffer;
  net_options.kernel_send_buffer_bytes = 16 << 10;
  net_options.rows_per_batch = 128;
  SocketServer net(&server, net_options);
  ASSERT_TRUE(net.Start().ok());
  const std::string address = net.address().ToString();
  const std::string blowup =
      "select * where { ?w A ?x . ?x B ?y . ?y C ?z . }";

  // The fast tenant: small row-budget queries in a closed loop on its
  // own connection until the slow stream finishes. Latencies and
  // failures are collected here and asserted on the main thread.
  std::atomic<bool> slow_done{false};
  std::vector<double> fast_ms;
  int fast_failures = 0;
  std::thread fast([&] {
    auto client = Client::Connect(address);
    if (!client.ok()) {
      ++fast_failures;
      return;
    }
    while (!slow_done.load(std::memory_order_relaxed)) {
      QueryFrame query;
      query.sparql = blowup;
      query.row_budget = 100;
      Stopwatch watch;
      auto result = (*client)->Run(query);
      fast_ms.push_back(watch.ElapsedMillis());
      if (!result.ok() ||
          result->report.outcome !=
              runtime::QueryOutcome::kBudgetExhausted) {
        ++fast_failures;
        break;
      }
    }
    (void)(*client)->Goodbye();
  });

  // The slow reader: ~10 ms per ROW-BATCH frame, tiny SO_RCVBUF so the
  // kernel cannot absorb the stream either.
  ClientOptions slow_options;
  slow_options.recv_buffer_bytes = 8 << 10;
  auto slow = Client::Connect(address, slow_options);
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  auto result = (*slow)->Run(blowup, [](const RowBatchFrame&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  });
  slow_done.store(true, std::memory_order_relaxed);

  // The slow stream itself completed, in order and in full.
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->report.outcome, runtime::QueryOutcome::kCompleted);
  EXPECT_EQ(result->rows.size(), 22500u);

  // Buffer accounting, read before the connection closes: the stream
  // stalled at least once and the high-water mark respected the bound.
  const runtime::RuntimeStats stats = net.stats();
  uint64_t stalls = 0;
  uint64_t high_water = 0;
  for (const runtime::ConnectionStats& conn : stats.connections) {
    stalls += conn.send_stalls;
    high_water = std::max(high_water, conn.buffer_high_water);
    EXPECT_LE(conn.buffer_high_water, kSendBuffer)
        << "connection " << conn.id << " overran the send buffer";
  }
  EXPECT_GE(stalls, 1u);
  EXPECT_GT(high_water, 0u);

  EXPECT_TRUE((*slow)->Goodbye().ok());
  fast.join();

  // The other tenant was never starved: its closed loop kept finishing
  // small queries while the slow stream dripped for seconds. The bound
  // is deliberately loose (CI boxes stall); the point is "seconds, not
  // the slow stream's lifetime".
  EXPECT_EQ(fast_failures, 0);
  ASSERT_GE(fast_ms.size(), 1u);
  for (double ms : fast_ms) EXPECT_LT(ms, 30'000.0);
}

}  // namespace
}  // namespace net
}  // namespace wireframe
