# Provide GTest::gtest / GTest::gtest_main targets.
#
# Preference order:
#   1. An installed GoogleTest (system package or toolchain-provided).
#   2. FetchContent from the upstream repository (needs network).
#
# Either way the rest of the build only uses the imported GTest:: targets.

find_package(GTest QUIET)

if(GTest_FOUND OR TARGET GTest::gtest)
  message(STATUS "GoogleTest: using installed package")
else()
  message(STATUS "GoogleTest: not installed, fetching from upstream")
  include(FetchContent)
  FetchContent_Declare(
    googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
    URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7
  )
  # Keep gtest's own options from leaking into the parent project.
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest ALIAS gtest)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
endif()

include(GoogleTest)
